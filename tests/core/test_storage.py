"""Unit tests for storage accounting."""

from repro.core.loop_predictor import LoopPredictor, LoopPredictorConfig
from repro.core.ports import RepairPortConfig
from repro.core.repair.forward_walk import ForwardWalkRepair
from repro.core.repair.snapshot_repair import SnapshotRepair
from repro.core.storage import StorageBreakdown, system_storage
from repro.core.unit import StandardLocalUnit
from repro.predictors.tage import TagePredictor


class TestStorageBreakdown:
    def test_totals(self):
        breakdown = StorageBreakdown(
            baseline_bits=8192, local_bits=4096, repair_bits=2048
        )
        assert breakdown.total_bits == 14336
        assert breakdown.baseline_kb == 1.0
        assert breakdown.local_kb == 0.5
        assert breakdown.repair_kb == 0.25
        assert breakdown.total_kb == 1.75

    def test_describe_mentions_components(self):
        text = StorageBreakdown(8192, 8192, 8192).describe()
        assert "baseline" in text and "local" in text and "repair" in text


class TestSystemStorage:
    def test_baseline_only(self):
        tage = TagePredictor()
        breakdown = system_storage(tage, None)
        assert breakdown.baseline_bits == tage.storage_bits()
        assert breakdown.local_bits == 0
        assert breakdown.repair_bits == 0

    def test_full_system(self):
        tage = TagePredictor()
        local = LoopPredictor(LoopPredictorConfig.entries(128))
        scheme = ForwardWalkRepair(RepairPortConfig(32, 4, 2))
        unit = StandardLocalUnit(local, scheme)
        breakdown = system_storage(tage, unit)
        assert breakdown.local_bits == local.storage_bits()
        assert breakdown.repair_bits == scheme.storage_bits()
        # Table 3 scale: forward walk lands near 8.6KB total.
        assert 7.0 < breakdown.total_kb < 10.5

    def test_snapshot_storage_dominates(self):
        tage = TagePredictor()
        local = LoopPredictor(LoopPredictorConfig.entries(128))
        fwd_unit = StandardLocalUnit(
            LoopPredictor(LoopPredictorConfig.entries(128)),
            ForwardWalkRepair(RepairPortConfig(32, 4, 2)),
        )
        snap_unit = StandardLocalUnit(local, SnapshotRepair(RepairPortConfig(32, 8, 8)))
        assert (
            system_storage(tage, snap_unit).repair_bits
            > 5 * system_storage(tage, fwd_unit).repair_bits
        )

    def test_multistage_storage(self):
        from repro.core.repair.multistage import MultiStageUnit

        tage = TagePredictor()
        unit = MultiStageUnit()
        breakdown = system_storage(tage, unit)
        assert breakdown.local_bits > 0
        assert breakdown.repair_bits > 0
        assert breakdown.total_bits == tage.storage_bits() + unit.storage_bits()
