"""Unit tests for the CBPw-Loop predictor."""


from repro.core.loop_predictor import (
    LoopPredictor,
    LoopPredictorConfig,
    pack_state,
    unpack_state,
)


def train_loop(predictor, pc, trip, executions, dominant=True):
    """Run a clean loop through the predictor in order; returns accuracy
    over the final execution."""
    correct = total = 0
    for execution in range(executions):
        outcomes = [dominant] * trip + [not dominant]
        for taken in outcomes:
            pred = predictor.lookup(pc)
            if execution == executions - 1:
                total += 1
                if pred is not None and pred.taken == taken:
                    correct += 1
            spec = predictor.spec_update(pc, taken)
            predictor.train(pc, spec.pre_state, taken)
    return correct / total if total else 0.0


class TestStateEncoding:
    def test_pack_unpack_round_trip(self):
        for count in (0, 1, 7, 2047):
            for direction in (True, False):
                assert unpack_state(pack_state(count, direction)) == (count, direction)


class TestStateMachine:
    def test_next_state_counts_dominant(self):
        predictor = LoopPredictor()
        state = pack_state(3, True)
        assert unpack_state(predictor.next_state(state, True)) == (4, True)

    def test_next_state_resets_on_flip(self):
        predictor = LoopPredictor()
        state = pack_state(7, True)
        assert unpack_state(predictor.next_state(state, False)) == (0, True)

    def test_dominant_relearned_after_double_flip(self):
        predictor = LoopPredictor()
        state = pack_state(0, True)
        new_state = predictor.next_state(state, False)
        assert unpack_state(new_state) == (1, False)

    def test_count_saturates(self):
        predictor = LoopPredictor()
        state = pack_state(predictor.pt.config.max_trip, True)
        count, _ = unpack_state(predictor.next_state(state, True))
        assert count == predictor.pt.config.max_trip

    def test_initial_state(self):
        predictor = LoopPredictor()
        assert unpack_state(predictor.initial_state(True)) == (1, True)
        assert unpack_state(predictor.initial_state(False)) == (1, False)


class TestPrediction:
    def test_learns_backward_loop(self):
        predictor = LoopPredictor()
        accuracy = train_loop(predictor, 0x4000, trip=7, executions=10)
        assert accuracy == 1.0

    def test_learns_forward_branch(self):
        """NNN...T if-then-else patterns (dominant not-taken)."""
        predictor = LoopPredictor()
        accuracy = train_loop(predictor, 0x4000, trip=5, executions=10, dominant=False)
        assert accuracy == 1.0

    def test_no_prediction_before_confidence(self):
        predictor = LoopPredictor()
        pc = 0x4000
        for taken in [True] * 5 + [False]:
            assert predictor.lookup(pc) is None or True  # may be None
            spec = predictor.spec_update(pc, taken)
            predictor.train(pc, spec.pre_state, taken)
        # One completed execution is not enough for confidence.
        assert predictor.lookup(pc) is None

    def test_exit_predicted_at_exact_iteration(self):
        predictor = LoopPredictor()
        pc = 0x4000
        train_loop(predictor, pc, trip=4, executions=8)
        # Mid-loop: dominant; at count == trip: exit.
        slot = predictor.bht.find(pc)
        predictor.bht.set_state(slot, pack_state(2, True))
        assert predictor.lookup(pc).taken is True
        predictor.bht.set_state(slot, pack_state(4, True))
        assert predictor.lookup(pc).taken is False

    def test_invalid_entry_gives_no_prediction(self):
        predictor = LoopPredictor()
        pc = 0x4000
        train_loop(predictor, pc, trip=4, executions=8)
        predictor.bht.invalidate_pc(pc)
        assert predictor.lookup(pc) is None

    def test_variable_trips_never_confident(self):
        predictor = LoopPredictor()
        pc = 0x4000
        import random

        rng = random.Random(5)
        for _ in range(20):
            trip = rng.randint(2, 30)
            for taken in [True] * trip + [False]:
                spec = predictor.spec_update(pc, taken)
                predictor.train(pc, spec.pre_state, taken)
        entry = predictor.pt.lookup(pc)
        assert entry is None or not entry.confident


class TestTraining:
    def test_own_misprediction_penalized(self):
        predictor = LoopPredictor()
        pc = 0x4000
        train_loop(predictor, pc, trip=6, executions=8)
        before = predictor.pt.lookup(pc).confidence
        predictor.train(pc, pack_state(3, True), taken=True, predicted=False)
        assert predictor.pt.lookup(pc).confidence == before - 1

    def test_none_pre_state_trains_nothing(self):
        predictor = LoopPredictor()
        predictor.train(0x4000, None, True)
        assert predictor.pt.occupancy() == 0

    def test_corrupt_carried_state_poisons_trip(self):
        """Training from a corrupted count teaches the wrong trip —
        exactly how no-repair degrades even future predictions."""
        predictor = LoopPredictor()
        pc = 0x4000
        train_loop(predictor, pc, trip=6, executions=8)
        for _ in range(12):
            predictor.train(pc, pack_state(9, True), taken=False)
        assert predictor.pt.lookup(pc).trip == 9


class TestRepairInterface:
    def test_repair_write_restores_state(self):
        predictor = LoopPredictor()
        pc = 0x4000
        predictor.spec_update(pc, True)
        predictor.repair_write(pc, pack_state(5, True))
        slot = predictor.bht.find(pc)
        assert unpack_state(predictor.bht.state_at(slot)) == (5, True)

    def test_repair_write_reallocates_missing_entry(self):
        predictor = LoopPredictor()
        assert predictor.repair_write(0x8000, pack_state(3, False))
        assert predictor.bht.find(0x8000) >= 0

    def test_repair_remove_undoes_fresh_allocation(self):
        predictor = LoopPredictor()
        predictor.spec_update(0x8000, True)
        assert predictor.repair_remove(0x8000)
        assert predictor.bht.find(0x8000) == -1

    def test_shared_pt_storage_counted_once(self):
        from repro.core.pattern_table import LoopPatternTable

        config = LoopPredictorConfig.entries(64)
        shared_pt = LoopPatternTable(config.pt)
        a = LoopPredictor(config, pt=shared_pt)
        b = LoopPredictor(config)
        assert a.storage_bits() < b.storage_bits()


class TestConfig:
    def test_paper_configurations(self):
        for entries in (64, 128, 256):
            config = LoopPredictorConfig.entries(entries)
            assert config.bht.entries == entries
            assert config.pt.entries == entries

    def test_storage_scales_with_entries(self):
        small = LoopPredictorConfig.entries(64).storage_bits()
        large = LoopPredictorConfig.entries(256).storage_bits()
        assert large == 4 * small
