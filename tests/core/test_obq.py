"""Unit tests for the Outstanding Branch Queue."""

import pytest

from repro.core.local_base import SpecUpdate
from repro.core.obq import OutstandingBranchQueue
from repro.errors import ConfigError


def spec(pc, pre_state=0, pre_valid=True):
    return SpecUpdate(
        pc=pc, slot=0, pre_state=pre_state, pre_valid=pre_valid, post_state=pre_state + 2
    )


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            OutstandingBranchQueue(capacity=0)

    def test_push_returns_monotonic_ids(self):
        obq = OutstandingBranchQueue(capacity=4)
        ids = [obq.push(uid, spec(0x100 + uid)) for uid in range(3)]
        assert ids == [0, 1, 2]
        assert len(obq) == 3

    def test_overflow_returns_none(self):
        obq = OutstandingBranchQueue(capacity=2)
        assert obq.push(0, spec(0x100)) is not None
        assert obq.push(1, spec(0x104)) is not None
        assert obq.push(2, spec(0x108)) is None
        assert obq.overflows == 1

    def test_retire_evicts_head(self):
        obq = OutstandingBranchQueue(capacity=4)
        for uid in range(4):
            obq.push(uid, spec(0x100 + 4 * uid))
        assert obq.retire(1) == 2
        assert len(obq) == 2
        assert obq.entries()[0].first_uid == 2

    def test_retire_respects_order(self):
        obq = OutstandingBranchQueue(capacity=4)
        obq.push(5, spec(0x100))
        obq.push(9, spec(0x104))
        assert obq.retire(4) == 0
        assert obq.retire(5) == 1


class TestFlush:
    def test_flush_removes_younger(self):
        obq = OutstandingBranchQueue(capacity=8)
        for uid in range(6):
            obq.push(uid, spec(0x100 + 4 * uid, pre_state=uid))
        removed = obq.flush_younger(2)
        assert [e.first_uid for e in removed] == [3, 4, 5]
        assert len(obq) == 3

    def test_flush_empty_queue(self):
        obq = OutstandingBranchQueue(capacity=4)
        assert obq.flush_younger(10) == []


class TestWalks:
    def test_forward_from(self):
        obq = OutstandingBranchQueue(capacity=8)
        ids = [obq.push(uid, spec(0x100 + 4 * uid)) for uid in range(5)]
        walk = obq.forward_from(ids[2])
        assert [e.entry_id for e in walk] == ids[2:]

    def test_backward_to(self):
        obq = OutstandingBranchQueue(capacity=8)
        ids = [obq.push(uid, spec(0x100 + 4 * uid)) for uid in range(5)]
        walk = obq.backward_to(ids[1])
        assert [e.entry_id for e in walk] == list(reversed(ids[1:]))

    def test_find(self):
        obq = OutstandingBranchQueue(capacity=4)
        entry_id = obq.push(0, spec(0x100))
        assert obq.find(entry_id).pc == 0x100
        assert obq.find(999) is None

    def test_walk_of_evicted_entry_is_empty(self):
        obq = OutstandingBranchQueue(capacity=4)
        entry_id = obq.push(0, spec(0x100))
        obq.retire(0)
        assert obq.forward_from(entry_id) == []


class TestCoalescing:
    def test_run_collapses_to_two_entries(self):
        """First and last instance keep entries; intermediates merge."""
        obq = OutstandingBranchQueue(capacity=8, coalesce=True)
        ids = [obq.push(uid, spec(0x100, pre_state=uid)) for uid in range(5)]
        assert len(obq) == 2
        assert ids[0] != ids[1]
        assert ids[1] == ids[2] == ids[3] == ids[4]
        assert obq.merges == 3

    def test_last_entry_tracks_newest_instance(self):
        obq = OutstandingBranchQueue(capacity=8, coalesce=True)
        for uid in range(4):
            obq.push(uid, spec(0x100, pre_state=10 + uid))
        last = obq.entries()[-1]
        assert last.pre_state == 13
        assert last.last_uid == 3
        assert last.merged == 2

    def test_different_pc_breaks_run(self):
        obq = OutstandingBranchQueue(capacity=8, coalesce=True)
        obq.push(0, spec(0x100))
        obq.push(1, spec(0x100))
        obq.push(2, spec(0x200))
        obq.push(3, spec(0x100))  # new run, not merged with the old one
        assert len(obq) == 4

    def test_retire_blocked_until_last_merged_retires(self):
        obq = OutstandingBranchQueue(capacity=8, coalesce=True)
        for uid in range(4):
            obq.push(uid, spec(0x100, pre_state=uid))
        # The "last" entry covers uids 1..3: retiring uid 2 only frees
        # the first-instance entry.
        assert obq.retire(2) == 1
        assert obq.retire(3) == 1

    def test_partial_flush_rolls_back_run(self):
        obq = OutstandingBranchQueue(capacity=8, coalesce=True)
        for uid in range(5):
            obq.push(uid, spec(0x100, pre_state=uid))
        # Mispredict at uid 2 (an intermediate): the run shrinks to it
        # and the surviving entry takes the carried pre-state.
        removed = obq.flush_younger(2, boundary_pre_state=2)
        assert removed == []
        tail = obq.entries()[-1]
        assert tail.last_uid == 2
        assert tail.pre_state == 2
        assert not tail.run_open

    def test_flush_closes_open_run(self):
        obq = OutstandingBranchQueue(capacity=8, coalesce=True)
        for uid in range(3):
            obq.push(uid, spec(0x100, pre_state=uid))
        obq.flush_younger(2, boundary_pre_state=2)
        # Post-flush instances start a new run rather than merging into
        # the flushed one.
        obq.push(7, spec(0x100, pre_state=7))
        assert obq.entries()[-1].first_uid == 7

    def test_full_queue_can_still_merge(self):
        obq = OutstandingBranchQueue(capacity=2, coalesce=True)
        obq.push(0, spec(0x100, pre_state=0))
        obq.push(1, spec(0x100, pre_state=1))  # opens the run: queue full
        assert obq.full
        merged_id = obq.push(2, spec(0x100, pre_state=2))
        assert merged_id is not None
        assert obq.overflows == 0


class TestStorage:
    def test_paper_entry_size(self):
        obq = OutstandingBranchQueue(capacity=32)
        # 76 bits per entry: 64-bit PC + 11-bit pattern + valid.
        assert obq.storage_bits() == 32 * 76
