"""Unit tests for the loop Pattern Table."""

import pytest

from repro.core.pattern_table import LoopPatternTable, PatternTableConfig
from repro.errors import ConfigError


class TestConfig:
    def test_defaults(self):
        config = PatternTableConfig()
        assert config.entries == 128
        assert config.max_trip == 2047
        assert config.max_confidence == 7

    def test_invalid_threshold(self):
        with pytest.raises(ConfigError):
            PatternTableConfig(confidence_threshold=0)
        with pytest.raises(ConfigError):
            PatternTableConfig(confidence_bits=2, confidence_threshold=4)

    def test_storage_sized_like_paper(self):
        # 128 entries at ~0.75KB means ~48 bits/entry.
        config = PatternTableConfig(entries=128)
        per_entry = config.storage_bits() / config.entries
        assert 25 <= per_entry <= 48


class TestTraining:
    def test_confidence_builds_on_consistent_trips(self):
        pt = LoopPatternTable(PatternTableConfig(confidence_threshold=3))
        pc = 0x4000
        assert pt.lookup(pc) is None
        for _ in range(4):
            pt.train_exit(pc, 12)
        entry = pt.lookup(pc)
        assert entry is not None
        assert entry.trip == 12
        assert entry.confident

    def test_confidence_not_reached_with_two_exits(self):
        pt = LoopPatternTable(PatternTableConfig(confidence_threshold=3))
        pt.train_exit(0x4000, 12)
        pt.train_exit(0x4000, 12)
        entry = pt.lookup(0x4000)
        assert entry is not None
        assert not entry.confident

    def test_trip_change_decays_then_replaces(self):
        pt = LoopPatternTable(PatternTableConfig(confidence_threshold=3))
        pc = 0x4000
        for _ in range(5):
            pt.train_exit(pc, 12)
        before = pt.lookup(pc).confidence
        # Trip changes: confidence decays without immediately replacing.
        pt.train_exit(pc, 20)
        entry = pt.lookup(pc)
        assert entry.trip == 12
        assert entry.confidence == before - 1
        # Persistent new trip eventually replaces the old one.
        for _ in range(8):
            pt.train_exit(pc, 20)
        assert pt.lookup(pc).trip == 20

    def test_trip_saturates_at_max(self):
        pt = LoopPatternTable()
        pt.train_exit(0x4000, 10_000)
        entry = pt.lookup(0x4000)
        assert entry.trip == pt.config.max_trip

    def test_penalize_decrements(self):
        pt = LoopPatternTable(PatternTableConfig(confidence_threshold=3))
        for _ in range(5):
            pt.train_exit(0x4000, 8)
        before = pt.lookup(0x4000).confidence
        pt.penalize(0x4000)
        assert pt.lookup(0x4000).confidence == before - 1

    def test_penalize_missing_pc_is_safe(self):
        pt = LoopPatternTable()
        pt.penalize(0xDEAD)  # must not raise

    def test_penalize_floor_zero(self):
        pt = LoopPatternTable()
        pt.train_exit(0x4000, 5)
        for _ in range(5):
            pt.penalize(0x4000)
        assert pt.lookup(0x4000).confidence == 0


class TestReplacement:
    def test_low_confidence_entries_evicted_first(self):
        config = PatternTableConfig(entries=8, ways=8)
        pt = LoopPatternTable(config)
        # Fill all ways of the single set.
        for i in range(8):
            for _ in range(4):
                pt.train_exit(0x1000 + 4 * i, 10 + i)
        # One entry loses all confidence.
        for _ in range(8):
            pt.penalize(0x1000)
        pt.train_exit(0xBEEF0, 99)
        assert pt.lookup(0xBEEF0) is not None
        assert pt.lookup(0x1000) is None
        assert pt.evictions == 1

    def test_occupancy(self):
        pt = LoopPatternTable(PatternTableConfig(entries=16, ways=8))
        assert pt.occupancy() == 0
        pt.train_exit(0x4000, 3)
        pt.train_exit(0x5000, 3)
        assert pt.occupancy() == 2
