"""Unit tests for the generic two-level local predictor."""

import pytest

from repro.core.two_level_local import TwoLevelLocalConfig, TwoLevelLocalPredictor
from repro.errors import ConfigError


def drive(predictor, pc, outcomes, score_from=0):
    correct = total = 0
    for i, taken in enumerate(outcomes):
        pred = predictor.lookup(pc)
        if i >= score_from:
            total += 1
            if pred is not None and pred.taken == taken:
                correct += 1
        spec = predictor.spec_update(pc, taken)
        predictor.train(pc, spec.pre_state, taken)
    return correct / total if total else 0.0


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TwoLevelLocalConfig(history_bits=0)
        with pytest.raises(ConfigError):
            TwoLevelLocalConfig(counter_bits=1)
        with pytest.raises(ConfigError):
            TwoLevelLocalConfig(confidence_margin=0)

    def test_storage_positive_and_scaling(self):
        small = TwoLevelLocalConfig(pt_log_entries=10).storage_bits()
        large = TwoLevelLocalConfig(pt_log_entries=12).storage_bits()
        assert 0 < small < large


class TestStateMachine:
    def test_next_state_shifts(self):
        predictor = TwoLevelLocalPredictor()
        assert predictor.next_state(0b1010, True) == 0b10101
        assert predictor.next_state(0b1010, False) == 0b10100

    def test_state_bounded_by_history_bits(self):
        predictor = TwoLevelLocalPredictor(TwoLevelLocalConfig(history_bits=4))
        state = 0
        for _ in range(20):
            state = predictor.next_state(state, True)
        assert state == 0b1111

    def test_initial_state(self):
        predictor = TwoLevelLocalPredictor()
        assert predictor.initial_state(True) == 1
        assert predictor.initial_state(False) == 0


class TestPrediction:
    def test_learns_multi_flip_pattern(self):
        """TTNN repeating — a pattern the loop predictor cannot hold."""
        predictor = TwoLevelLocalPredictor()
        pattern = [True, True, False, False]
        outcomes = pattern * 120
        accuracy = drive(predictor, 0x4000, outcomes, score_from=240)
        assert accuracy > 0.9

    def test_quarantines_noisy_branch(self):
        """A coin-flip branch should rarely earn predictions."""
        import random

        predictor = TwoLevelLocalPredictor()
        rng = random.Random(9)
        outcomes = [rng.random() < 0.5 for _ in range(400)]
        predictions = 0
        for taken in outcomes:
            if predictor.lookup(0x4000) is not None:
                predictions += 1
            spec = predictor.spec_update(0x4000, taken)
            predictor.train(0x4000, spec.pre_state, taken)
        assert predictions < len(outcomes) * 0.3

    def test_repair_interface_round_trip(self):
        predictor = TwoLevelLocalPredictor()
        predictor.spec_update(0x4000, True)
        predictor.repair_write(0x4000, 0b1011)
        slot = predictor.bht.find(0x4000)
        assert predictor.bht.state_at(slot) == 0b1011

    def test_confidence_resets_on_virtual_miss(self):
        predictor = TwoLevelLocalPredictor()
        pattern = [True, True, False, False]
        drive(predictor, 0x4000, pattern * 100)
        assert predictor._entry_conf[0x4000] > 0
        # Feed contradictions: streak collapses.
        for _ in range(8):
            spec = predictor.spec_update(0x4000, True)
            predictor.train(0x4000, spec.pre_state, True)
        drive(predictor, 0x4000, [False, True] * 4)
        assert predictor._entry_conf[0x4000] <= predictor.config.entry_confidence_max
