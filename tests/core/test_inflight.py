"""Unit tests for in-flight branch bookkeeping."""

from repro.core.inflight import CarriedRepair, InflightBranch
from repro.core.local_base import SpecUpdate
from tests.conftest import make_branch


class TestInflightBranch:
    def test_pc_and_actual_delegate_to_record(self):
        record = make_branch(pc=0x1234, taken=False)
        branch = InflightBranch(uid=1, record=record)
        assert branch.pc == 0x1234
        assert branch.actual_taken is False

    def test_mispredicted(self):
        branch = InflightBranch(uid=1, record=make_branch(taken=True))
        branch.predicted_taken = False
        assert branch.mispredicted
        branch.predicted_taken = True
        assert not branch.mispredicted

    def test_carried_pre_state(self):
        branch = InflightBranch(uid=1, record=make_branch())
        assert branch.carried_pre_state is None
        branch.spec = SpecUpdate(
            pc=branch.pc, slot=0, pre_state=13, pre_valid=True, post_state=15
        )
        assert branch.carried_pre_state == 13

    def test_defaults(self):
        branch = InflightBranch(uid=0, record=make_branch())
        assert not branch.wrong_path
        assert not branch.squashed
        assert not branch.checkpointed
        assert branch.obq_id is None
        assert branch.carried is None

    def test_carried_repair_record(self):
        entry = CarriedRepair(pc=0x10, state=None, valid=False)
        assert entry.state is None
        entry2 = CarriedRepair(pc=0x10, state=5, valid=True)
        assert entry2.state == 5
