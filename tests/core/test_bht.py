"""Unit tests for the Branch History Table."""

import pytest

from repro.core.bht import BhtConfig, BranchHistoryTable
from repro.errors import ConfigError


def filled_bht(entries=32, ways=4):
    bht = BranchHistoryTable(BhtConfig(entries=entries, ways=ways))
    pcs = [0x1000 + 4 * i for i in range(entries)]
    for i, pc in enumerate(pcs):
        bht.allocate(pc, state=i)
    return bht, pcs


class TestConfig:
    def test_defaults_are_paper_sized(self):
        config = BhtConfig()
        assert config.entries == 128
        assert config.ways == 8
        assert config.sets == 16

    def test_entries_divisible_by_ways(self):
        with pytest.raises(ConfigError):
            BhtConfig(entries=100, ways=8)

    def test_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            BhtConfig(entries=24, ways=4)  # 6 sets

    def test_storage_accounts_all_fields(self):
        config = BhtConfig(entries=128, ways=8, tag_bits=8, state_bits=12)
        # tag + state + valid + repair + 3 LRU bits = 25 per entry.
        assert config.storage_bits() == 128 * 25


class TestLookupAllocate:
    def test_find_miss(self):
        bht = BranchHistoryTable(BhtConfig(entries=16, ways=4))
        assert bht.find(0x1234) == -1

    def test_allocate_then_find(self):
        bht = BranchHistoryTable(BhtConfig(entries=16, ways=4))
        slot = bht.allocate(0x1000, state=42)
        assert bht.find(0x1000) == slot
        assert bht.state_at(slot) == 42
        assert bht.is_valid(slot)
        assert bht.pc_at(slot) == 0x1000

    def test_lru_eviction_within_set(self):
        bht = BranchHistoryTable(BhtConfig(entries=8, ways=2))
        # Find pcs that map to one set.
        base = None
        same_set = []
        for pc in range(0x1000, 0x9000, 4):
            slot_set = bht._set_base(pc)
            if base is None:
                base = slot_set
            if slot_set == base:
                same_set.append(pc)
            if len(same_set) == 3:
                break
        a, b, c = same_set
        bht.allocate(a, 1)
        bht.allocate(b, 2)
        bht.touch(bht.find(a))  # make b the LRU victim
        bht.allocate(c, 3)
        assert bht.find(a) >= 0
        assert bht.find(b) == -1
        assert bht.find(c) >= 0
        assert bht.evictions == 1

    def test_occupancy_and_residents(self):
        bht, pcs = filled_bht(entries=16, ways=4)
        assert bht.occupancy() == 16
        assert sorted(bht.resident_pcs()) == sorted(pcs)


class TestStateAndValid:
    def test_set_state(self):
        bht = BranchHistoryTable(BhtConfig(entries=16, ways=4))
        slot = bht.allocate(0x1000, 5)
        bht.set_state(slot, 9)
        assert bht.state_at(slot) == 9

    def test_invalidate_pc(self):
        bht = BranchHistoryTable(BhtConfig(entries=16, ways=4))
        slot = bht.allocate(0x1000, 5)
        assert bht.invalidate_pc(0x1000)
        assert not bht.is_valid(slot)
        assert bht.find(0x1000) == slot  # still present
        assert not bht.invalidate_pc(0x9999)

    def test_remove_pc(self):
        bht = BranchHistoryTable(BhtConfig(entries=16, ways=4))
        bht.allocate(0x1000, 5)
        assert bht.remove_pc(0x1000)
        assert bht.find(0x1000) == -1
        assert not bht.remove_pc(0x1000)


class TestRepairBits:
    def test_set_all_and_clear(self):
        bht, pcs = filled_bht(entries=16, ways=4)
        bht.set_all_repair_bits()
        slots = [bht.find(pc) for pc in pcs]
        assert all(bht.repair_bit(s) for s in slots)
        bht.clear_repair_bit(slots[0])
        assert not bht.repair_bit(slots[0])
        assert bht.repair_bit(slots[1])

    def test_allocation_clears_repair_bit(self):
        bht = BranchHistoryTable(BhtConfig(entries=16, ways=4))
        bht.set_all_repair_bits()
        slot = bht.allocate(0x1000, 1)
        assert not bht.repair_bit(slot)


class TestSnapshots:
    def test_snapshot_restore_round_trip(self):
        bht, pcs = filled_bht(entries=16, ways=4)
        snap = bht.snapshot()
        for pc in pcs[:5]:
            bht.set_state(bht.find(pc), 999)
        bht.invalidate_pc(pcs[6])
        dirty = bht.restore_snapshot(snap)
        assert dirty == 6
        for i, pc in enumerate(pcs):
            slot = bht.find(pc)
            assert bht.state_at(slot) == i
            assert bht.is_valid(slot)

    def test_snapshot_is_independent_copy(self):
        bht, pcs = filled_bht(entries=16, ways=4)
        snap = bht.snapshot()
        bht.set_state(bht.find(pcs[0]), 777)
        assert snap[1][bht.find(pcs[0])] != 777

    def test_restore_counts_allocation_changes(self):
        bht, pcs = filled_bht(entries=16, ways=4)
        snap = bht.snapshot()
        bht.remove_pc(pcs[0])
        bht.allocate(0xBEEF0, 1)
        dirty = bht.restore_snapshot(snap)
        assert dirty >= 1
        assert bht.find(pcs[0]) >= 0
        assert bht.find(0xBEEF0) == -1
