"""Tests for the persistent result cache (src/repro/harness/result_cache.py)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.errors import ConfigError
from repro.harness import result_cache as rc
from repro.harness.runner import RunResult, _worker_count, run_single
from repro.harness.systems import SystemConfig
from repro.pipeline.config import PipelineConfig
from repro.telemetry import TELEMETRY

_SYSTEM = SystemConfig(name="baseline-tage", local_entries=None, scheme=None)
_LOCAL = SystemConfig(
    name="forward-walk-coalesce", scheme="forward", ports="32-4-2", coalesce=True
)
_BRANCHES = 1500


@pytest.fixture(autouse=True)
def _cache_env(tmp_path, monkeypatch):
    """Every test gets its own cache dir; traces stay off disk."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "results"))


def _entry_paths() -> list:
    cache = rc.active_cache()
    assert cache is not None
    return sorted(cache.root.glob("*.json"))


class TestCacheHitAndMiss:
    def test_hit_on_identical_rerun(self, tiny_spec):
        first = run_single(tiny_spec, _SYSTEM, _BRANCHES)
        entries = _entry_paths()
        assert len(entries) == 1
        # Poison the stored IPC: a second run must come from the cache,
        # not a re-simulation, to observe the poisoned value.
        payload = json.loads(entries[0].read_text())
        payload["result"]["ipc"] = 123.456
        entries[0].write_text(json.dumps(payload))
        second = run_single(tiny_spec, _SYSTEM, _BRANCHES)
        assert second.ipc == 123.456

    def test_miss_on_system_change(self, tiny_spec):
        run_single(tiny_spec, _SYSTEM, _BRANCHES)
        run_single(tiny_spec, _LOCAL, _BRANCHES)
        assert len(_entry_paths()) == 2

    def test_miss_on_workload_change(self, tiny_spec):
        run_single(tiny_spec, _SYSTEM, _BRANCHES)
        run_single(tiny_spec, _SYSTEM, _BRANCHES + 1)
        reseeded = dataclasses.replace(tiny_spec, seed=tiny_spec.seed + 1)
        run_single(reseeded, _SYSTEM, _BRANCHES)
        assert len(_entry_paths()) == 3

    def test_miss_on_pipeline_change(self, tiny_spec):
        run_single(tiny_spec, _SYSTEM, _BRANCHES)
        run_single(tiny_spec, _SYSTEM, _BRANCHES, pipeline=PipelineConfig(rob_entries=128))
        assert len(_entry_paths()) == 2

    def test_miss_on_code_fingerprint_change(self, tiny_spec, monkeypatch):
        first = run_single(tiny_spec, _SYSTEM, _BRANCHES)
        monkeypatch.setattr(rc, "_FINGERPRINT", "0" * 16)
        second = run_single(tiny_spec, _SYSTEM, _BRANCHES)
        assert len(_entry_paths()) == 2
        assert (first.ipc, first.cycles) == (second.ipc, second.cycles)

    def test_corrupt_entry_is_a_miss(self, tiny_spec):
        first = run_single(tiny_spec, _SYSTEM, _BRANCHES)
        entries = _entry_paths()
        entries[0].write_text("{not json")
        second = run_single(tiny_spec, _SYSTEM, _BRANCHES)
        assert (first.ipc, first.cycles) == (second.ipc, second.cycles)


class TestCachedEqualsUncached:
    def test_field_for_field(self, tiny_spec):
        uncached = run_single(tiny_spec, _LOCAL, _BRANCHES, use_result_cache=False)
        run_single(tiny_spec, _LOCAL, _BRANCHES)  # fills the cache
        cached = run_single(tiny_spec, _LOCAL, _BRANCHES)  # served from it
        for field in dataclasses.fields(RunResult):
            if field.name == "manifest":
                continue  # wall_s legitimately differs between runs
            assert getattr(cached, field.name) == getattr(uncached, field.name), (
                field.name
            )
        assert cached.manifest is not None and uncached.manifest is not None
        for key in ("config_hash", "workload_hash", "workload", "system", "branches"):
            assert cached.manifest[key] == uncached.manifest[key]


class TestDisabling:
    def test_disabled_when_telemetry_enabled(self, tiny_spec):
        real = run_single(tiny_spec, _SYSTEM, _BRANCHES)  # fill while disabled
        entries = _entry_paths()
        payload = json.loads(entries[0].read_text())
        payload["result"]["ipc"] = 123.456  # a hit would surface this
        entries[0].write_text(json.dumps(payload))
        was_enabled = TELEMETRY.enabled
        TELEMETRY.enable()
        try:
            assert rc.active_cache() is None
            result = run_single(tiny_spec, _SYSTEM, _BRANCHES)
        finally:
            if not was_enabled:
                TELEMETRY.disable()
        # Simulated for real, neither served from nor stored to the cache.
        assert result.ipc == real.ipc != 123.456
        poisoned = json.loads(entries[0].read_text())
        assert poisoned["result"]["ipc"] == 123.456

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        assert rc.active_cache() is None

    def test_env_values(self, tmp_path, monkeypatch):
        for value in ("", "0", "off", "none", "false"):
            monkeypatch.setenv("REPRO_RESULT_CACHE", value)
            assert rc.active_cache() is None
        for value in ("1", "on", "true"):
            monkeypatch.setenv("REPRO_RESULT_CACHE", value)
            cache = rc.active_cache()
            assert cache is not None
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "elsewhere"))
        cache = rc.active_cache()
        assert cache is not None and cache.root == tmp_path / "elsewhere"

    def test_explicit_override_beats_env(self, tiny_spec):
        assert rc.active_cache(use_result_cache=False) is None

    def test_explicit_on_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        cache = rc.active_cache(use_result_cache=True)
        assert cache is not None


class TestConcurrentWriters:
    def test_parallel_stores_never_corrupt_an_entry(self, tiny_spec):
        """Regression: concurrent same-key writers must stay atomic.

        Before temp names carried thread ids, two server worker threads
        storing the same entry could collide on one temp file and rename
        a partially rewritten document into place.
        """
        import threading

        result = run_single(tiny_spec, _SYSTEM, _BRANCHES)
        cache = rc.active_cache()
        assert cache is not None and result.manifest is not None
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def writer() -> None:
            try:
                barrier.wait()
                for _ in range(25):
                    cache.store(result)
                    loaded = cache.load(result.manifest)
                    assert loaded is not None, "reader saw a torn entry"
                    assert loaded.cycles == result.cycles
            except BaseException as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(_entry_paths()) == 1
        # No temp-file litter: every writer's rename (or cleanup) ran.
        assert list(cache.root.glob("*.tmp")) == []
        reloaded = cache.load(result.manifest)
        assert reloaded is not None and reloaded.ipc == result.ipc


class TestWorkerCountEnv:
    def test_malformed_env_raises_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        with pytest.raises(ConfigError, match="REPRO_WORKERS"):
            _worker_count(4)

    def test_valid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert _worker_count(8) == 3
