"""Unit tests for the analysis subpackage."""

import pytest

from repro.analysis.compare import compare_systems, diff_sweeps
from repro.analysis.drilldown import diagnose
from repro.analysis.markdown import category_markdown, markdown_table, table3_markdown
from repro.errors import ExperimentError
from repro.harness.runner import RunResult
from repro.metrics.aggregate import WorkloadResult


def run(workload="w1", system="s", ipc=1.0, mpki=5.0, category="hpc", extra=None):
    return RunResult(
        workload=workload,
        category=category,
        system=system,
        ipc=ipc,
        mpki=mpki,
        instructions=10_000,
        cycles=int(10_000 / ipc),
        mispredictions=int(mpki * 10),
        extra=extra or {},
    )


class TestDiffSweeps:
    def test_deltas(self):
        before = [run(ipc=1.0, mpki=5.0)]
        after = [run(ipc=1.1, mpki=4.0)]
        deltas = diff_sweeps(before, after)
        assert len(deltas) == 1
        assert deltas[0].ipc_change == pytest.approx(0.1)
        assert deltas[0].mpki_change == pytest.approx(-1.0)
        assert not deltas[0].is_regression()

    def test_regression_flag(self):
        deltas = diff_sweeps([run(ipc=1.0)], [run(ipc=0.9)])
        assert deltas[0].is_regression()

    def test_unpaired_rows_ignored(self):
        before = [run(workload="a"), run(workload="b")]
        after = [run(workload="a"), run(workload="c")]
        deltas = diff_sweeps(before, after)
        assert [d.workload for d in deltas] == ["a"]

    def test_disjoint_sweeps_raise(self):
        with pytest.raises(ExperimentError):
            diff_sweeps([run(workload="a")], [run(workload="b")])


class TestCompareSystems:
    def test_within_sweep(self):
        results = [
            run(system="base", ipc=1.0, mpki=6.0),
            run(system="better", ipc=1.05, mpki=5.0),
        ]
        deltas = compare_systems(results, "base", "better")
        assert deltas[0].ipc_change == pytest.approx(0.05)

    def test_missing_system_raises(self):
        with pytest.raises(ExperimentError):
            compare_systems([run(system="base")], "base", "ghost")


class TestMarkdown:
    def test_markdown_table_shape(self):
        text = markdown_table(["a", "b"], [(1, 2), (3, 4)])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_category_markdown(self):
        paired = [
            WorkloadResult("w1", "hpc", 5.0, 4.0, 1.0, 1.02),
            WorkloadResult("w2", "mm", 6.0, 5.0, 1.0, 1.01),
        ]
        text = category_markdown(paired, title="demo")
        assert "### demo" in text
        assert "hpc" in text and "mm" in text
        assert "**overall**" in text

    def test_table3_markdown(self):
        paired = {
            "perfect-repair": [WorkloadResult("w", "hpc", 5.0, 3.5, 1.0, 1.04)],
            "forward-walk": [WorkloadResult("w", "hpc", 5.0, 4.0, 1.0, 1.03)],
        }
        text = table3_markdown(paired)
        assert "forward-walk" in text
        assert "perfect-repair" in text
        # Retained fraction of forward walk: 3% / 4% = 75%.
        assert "75%" in text


class TestDiagnose:
    def test_basic_indicators(self):
        result = run(
            extra={
                "unit": {"saves": 30, "damages": 10, "lookups": 1000},
                "repair": {
                    "events": 50,
                    "mean_writes_per_event": 4.0,
                    "uncheckpointed": 100,
                    "busy_cycles": 200,
                    "skipped_events": 0,
                    "restarts": 0,
                },
            }
        )
        diagnosis = diagnose(result)
        assert diagnosis.override_precision == pytest.approx(0.75)
        assert diagnosis.saves_per_kinst == pytest.approx(3.0)
        assert diagnosis.repairs_per_event == 4.0
        assert diagnosis.checkpoint_overflow_rate == pytest.approx(0.1)
        assert "IPC" in diagnosis.render()

    def test_notes_fire(self):
        result = run(
            extra={
                "unit": {"saves": 5, "damages": 20, "lookups": 100},
                "repair": {
                    "events": 50,
                    "mean_writes_per_event": 4.0,
                    "uncheckpointed": 60,
                    "busy_cycles": 0,
                    "skipped_events": 20,
                    "restarts": 10,
                },
            }
        )
        diagnosis = diagnose(result)
        assert len(diagnosis.notes) >= 3

    def test_baseline_run_without_extras(self):
        diagnosis = diagnose(run())
        assert diagnosis.override_precision == 0.0
        assert diagnosis.notes == ()
