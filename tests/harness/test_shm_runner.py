"""Unit tests for sweep sharding, stale-tmp sweeping, and the
shared-memory trace transport."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.errors import ConfigError
from repro.harness import runner
from repro.harness.runner import (
    _seed_memo_from_shm,
    _sweep_stale_tmp,
    load_trace,
    run_matrix,
    shard_bounds,
)
from repro.harness.scale import Scale
from repro.harness.systems import TABLE3_SYSTEMS, SystemConfig
from repro.telemetry import TELEMETRY
from repro.trace.columns import ColumnarTrace, SharedTrace

_BY_NAME = {cfg.name: cfg for cfg in TABLE3_SYSTEMS}


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")


@pytest.fixture(autouse=True)
def fresh_memo(monkeypatch):
    """Isolate the worker-local trace memo per test."""
    monkeypatch.setattr(runner, "_TRACE_MEMO", type(runner._TRACE_MEMO)())


class TestShardBounds:
    @pytest.mark.parametrize("count", [0, 1, 7, 8, 22, 100])
    @pytest.mark.parametrize("n", [1, 2, 3, 8])
    def test_disjoint_and_covering(self, count, n):
        spans = [shard_bounds(count, (k, n)) for k in range(1, n + 1)]
        # Contiguous in shard order, covering [0, count) exactly once.
        assert spans[0][0] == 0
        assert spans[-1][1] == count
        for (_, prev_end), (start, _) in zip(spans, spans[1:]):
            assert start == prev_end
        # Balanced: sizes differ by at most one.
        sizes = [end - start for start, end in spans]
        assert max(sizes) - min(sizes) <= 1

    def test_validation(self):
        for bad in [(0, 4), (5, 4), (1, 0), (-1, 3)]:
            with pytest.raises(ConfigError):
                shard_bounds(10, bad)

    def test_single_shard_is_identity(self):
        assert shard_bounds(13, (1, 1)) == (0, 13)

    def test_matrix_sharding_partitions_results(self, tiny_spec):
        scale = Scale(name="t", branches_per_workload=1200, workloads_per_category=1)
        systems = [_BY_NAME["baseline-tage"], _BY_NAME["no-repair"],
                   _BY_NAME["forward-walk-coalesce"]]
        full = run_matrix([tiny_spec], systems, scale, workers=1)
        sharded = [
            result
            for k in (1, 2)
            for result in run_matrix(
                [tiny_spec], systems, scale, workers=1, shard=(k, 2)
            )
        ]
        assert sharded == full


class TestStaleTmpSweep:
    def _dead_pid(self) -> int:
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        return proc.pid

    def test_dead_writer_tmp_removed(self, tmp_path):
        stale = tmp_path / f"w-1-100.trace.{self._dead_pid()}.tmp"
        stale.write_bytes(b"partial")
        _sweep_stale_tmp(tmp_path)
        assert not stale.exists()

    def test_live_and_own_tmp_kept(self, tmp_path):
        own = tmp_path / f"w-1-100.trace.{os.getpid()}.tmp"
        own.write_bytes(b"mine")
        live = tmp_path / "w-2-100.trace.1.tmp"  # PID 1 is always alive
        live.write_bytes(b"theirs")
        _sweep_stale_tmp(tmp_path)
        assert own.exists()
        assert live.exists()

    def test_malformed_names_kept(self, tmp_path):
        odd = tmp_path / "not-a-writer.tmp"
        odd.write_bytes(b"?")
        noise = tmp_path / "w.trace.notapid.tmp"
        noise.write_bytes(b"?")
        _sweep_stale_tmp(tmp_path)
        assert odd.exists()
        assert noise.exists()

    def test_swept_before_cache_write(self, tiny_spec, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        stale = tmp_path / f"x-1-1.trace.{self._dead_pid()}.tmp"
        stale.write_bytes(b"partial")
        load_trace(tiny_spec, 500)
        assert not stale.exists()
        assert (tmp_path / f"{tiny_spec.name}-{tiny_spec.seed}-500.trace").exists()


class TestShmTransport:
    def test_worker_path_does_zero_decodes(self, tiny_spec):
        """A shm-seeded worker never decodes or generates a trace.

        Runs the worker-side path in this process so the telemetry
        counters are observable: after seeding the memo from the
        shared segment, ``load_trace`` must be served entirely from
        the memo (``trace.decodes`` stays 0) off a single attach.
        """
        n = 800
        records = load_trace(tiny_spec, n)  # parent-side decode
        shared = ColumnarTrace.from_records(records).publish()
        try:
            runner._TRACE_MEMO.clear()  # become a "fresh worker"
            TELEMETRY.enable()
            try:
                registry = TELEMETRY.registry
                ref = (shared.name, len(records))
                _seed_memo_from_shm(tiny_spec, n, ref)
                assert load_trace(tiny_spec, n) == records
                _seed_memo_from_shm(tiny_spec, n, ref)  # memo hit, no re-attach
                assert registry.counter("trace.decodes").value == 0
                assert registry.counter("trace.shm_attaches").value == 1
            finally:
                TELEMETRY.disable()
        finally:
            shared.unlink()

    def test_parallel_matches_serial(self, tiny_spec):
        scale = Scale(name="t", branches_per_workload=1200, workloads_per_category=1)
        systems = [_BY_NAME["baseline-tage"], _BY_NAME["no-repair"]]
        serial = run_matrix([tiny_spec], systems, scale, workers=1)
        parallel = run_matrix([tiny_spec], systems, scale, workers=2, parallel=True)
        assert parallel == serial

    def test_segments_cleaned_up_on_worker_failure(self, tiny_spec, monkeypatch):
        """The finally-unlink must run even when a worker job raises."""
        published: list[SharedTrace] = []
        original = ColumnarTrace.publish

        def tracking_publish(self: ColumnarTrace) -> SharedTrace:
            shared = original(self)
            published.append(shared)
            return shared

        monkeypatch.setattr(ColumnarTrace, "publish", tracking_publish)
        scale = Scale(name="t", branches_per_workload=600, workloads_per_category=1)
        bad = SystemConfig(name="doomed", tage="no-such-preset")
        with pytest.raises(ConfigError):
            run_matrix(
                [tiny_spec],
                [_BY_NAME["baseline-tage"], bad],
                scale,
                workers=2,
                parallel=True,
            )
        assert published, "parallel sweep should have published a segment"
        for shared in published:
            with pytest.raises(FileNotFoundError):
                SharedTrace.attach(shared.name, 1)

    def test_shm_disabled_by_env(self, tiny_spec, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SHM", "off")
        published: list[SharedTrace] = []
        original = ColumnarTrace.publish

        def tracking_publish(self: ColumnarTrace) -> SharedTrace:
            shared = original(self)
            published.append(shared)
            return shared

        monkeypatch.setattr(ColumnarTrace, "publish", tracking_publish)
        scale = Scale(name="t", branches_per_workload=600, workloads_per_category=1)
        systems = [_BY_NAME["baseline-tage"], _BY_NAME["no-repair"]]
        serial = run_matrix([tiny_spec], systems, scale, workers=1)
        parallel = run_matrix([tiny_spec], systems, scale, workers=2, parallel=True)
        assert parallel == serial
        assert not published


class TestCorruptTraceCache:
    def test_corrupt_cached_file_regenerated(self, tiny_spec, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        fresh = load_trace(tiny_spec, 500)
        path = tmp_path / f"{tiny_spec.name}-{tiny_spec.seed}-500.trace"
        assert path.exists()
        path.write_bytes(path.read_bytes()[:-7])  # truncate the cached file
        runner._TRACE_MEMO.clear()
        again = load_trace(tiny_spec, 500)
        assert again == fresh
        assert path.exists()  # rewritten intact
