"""Unit tests for the sampled two-speed simulation engine."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.harness.runner import run_single
from repro.harness.sampling import (
    DetailedInterval,
    SamplingConfig,
    plan_intervals,
    run_sampled,
)
from repro.harness.systems import TABLE3_SYSTEMS, SystemConfig, build_system
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import PipelineModel
from repro.telemetry.manifest import build_manifest
from tests.conftest import loop_trace


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")


def _model(system: SystemConfig) -> PipelineModel:
    baseline, unit = build_system(system)
    return PipelineModel(baseline, unit=unit, hierarchy=CacheHierarchy())


_BY_NAME = {cfg.name: cfg for cfg in TABLE3_SYSTEMS}
TAGE = _BY_NAME["baseline-tage"]
FWC = _BY_NAME["forward-walk-coalesce"]


class TestSamplingConfig:
    def test_defaults_off(self):
        config = SamplingConfig()
        assert config.mode == "off"
        assert not config.enabled

    def test_validation(self):
        with pytest.raises(ConfigError):
            SamplingConfig(mode="random")
        with pytest.raises(ConfigError):
            SamplingConfig(interval=0)
        with pytest.raises(ConfigError):
            SamplingConfig(coverage=0.0)
        with pytest.raises(ConfigError):
            SamplingConfig(coverage=1.5)
        with pytest.raises(ConfigError):
            SamplingConfig(warmup=-1)
        with pytest.raises(ConfigError):
            SamplingConfig(max_phases=0)

    def test_payload_round_trip(self):
        config = SamplingConfig(mode="periodic", interval=100, coverage=0.25)
        payload = config.to_payload()
        assert payload["mode"] == "periodic"
        assert SamplingConfig(**payload) == config  # type: ignore[arg-type]


class TestPlanIntervals:
    def _config(self, **kwargs):
        defaults = {"mode": "periodic", "interval": 100, "coverage": 0.25}
        defaults.update(kwargs)
        return SamplingConfig(**defaults)

    def test_off_mode_rejected(self):
        with pytest.raises(ConfigError):
            plan_intervals([], SamplingConfig())

    def test_empty_trace(self):
        assert plan_intervals([], self._config()) == []

    def test_periodic_structure(self):
        trace = loop_trace(pc=0x1000, trip=4, executions=400)  # 2000 records
        config = self._config()
        plan = plan_intervals(trace, config)
        # One interval at the end of each stride-sized block.
        stride = round(1.0 / config.coverage)
        assert len(plan) == -(-len(trace) // (config.interval * stride))
        for prev, cur in zip(plan, plan[1:]):
            assert prev.end <= cur.start  # sorted, non-overlapping
        for iv in plan:
            assert 0 <= iv.start < iv.end <= len(trace)
            assert iv.end - iv.start <= config.interval

    def test_scaled_records_cover_trace(self):
        trace = loop_trace(pc=0x1000, trip=4, executions=410)  # 2050: ragged tail
        for config in (self._config(), self._config(interval=64, coverage=0.5)):
            plan = plan_intervals(trace, config)
            covered = sum(iv.scale * (iv.end - iv.start) for iv in plan)
            assert covered == pytest.approx(len(trace))

    def test_tail_shorter_than_interval(self):
        trace = loop_trace(pc=0x1000, trip=4, executions=9)  # 45 records
        plan = plan_intervals(trace, self._config(interval=100))
        assert plan == [DetailedInterval(start=0, end=45, scale=1.0)]

    def test_simpoint_structure(self):
        trace = loop_trace(pc=0x1000, trip=4, executions=100) + loop_trace(
            pc=0x9000, trip=4, executions=100
        )
        plan = plan_intervals(
            trace, self._config(mode="simpoint", interval=100, max_phases=3)
        )
        assert 1 <= len(plan) <= 3
        for prev, cur in zip(plan, plan[1:]):
            assert prev.end <= cur.start
        covered = sum(iv.scale * (iv.end - iv.start) for iv in plan)
        assert covered == pytest.approx(len(trace))


class TestRunSampled:
    def test_off_is_exact(self, tiny_trace):
        exact = _model(TAGE).run(tiny_trace)
        sampled = run_sampled(_model(TAGE), tiny_trace, SamplingConfig())
        assert sampled == exact

    @pytest.mark.parametrize("system", [TAGE, FWC], ids=lambda s: s.name)
    def test_trace_counts_are_exact(self, tiny_trace, system):
        """Occupancy counters come from the trace, not the sample."""
        config = SamplingConfig(mode="periodic", interval=200, warmup=300)
        exact = _model(system).run(tiny_trace)
        sampled = run_sampled(_model(system), tiny_trace, config)
        assert sampled.instructions == exact.instructions
        assert sampled.branches == exact.branches
        assert sampled.cond_branches == exact.cond_branches
        assert sampled.taken_branches == exact.taken_branches

    def test_estimates_in_the_ballpark(self, tiny_trace):
        """Small-scale sanity: the estimators track the exact run.

        The tight accuracy bounds (MPKI within 2%, IPC within 1%) hold
        at the locked 200k-branch benchmark config and are recorded in
        ``BENCH_perf.json``; at unit-test scale we only assert the
        estimates are the right order of magnitude and deterministic.
        """
        config = SamplingConfig(mode="periodic", interval=200, warmup=300)
        exact = _model(TAGE).run(tiny_trace)
        sampled = run_sampled(_model(TAGE), tiny_trace, config)
        again = run_sampled(_model(TAGE), tiny_trace, config)
        assert sampled == again  # deterministic
        assert sampled.mpki == pytest.approx(exact.mpki, rel=0.5)
        assert sampled.ipc == pytest.approx(exact.ipc, rel=0.25)

    def test_extra_reports_plan_and_confidence(self, tiny_trace):
        config = SamplingConfig(mode="periodic", interval=200, warmup=300)
        sampled = run_sampled(_model(TAGE), tiny_trace, config)
        info = sampled.extra["sampling"]
        assert info["mode"] == "periodic"
        assert info["intervals"] > 1
        assert 0.0 < info["detailed_fraction"] < 1.0
        assert info["detailed_records"] == pytest.approx(
            len(tiny_trace) * config.coverage, rel=0.35
        )
        assert info["ci95_mpki"] is None or info["ci95_mpki"] >= 0.0
        assert info["ci95_ipc"] is None or info["ci95_ipc"] >= 0.0


class TestRunSingleSampling:
    def test_default_has_no_sampling_manifest(self, tiny_spec):
        result = run_single(tiny_spec, TAGE, 1500)
        assert result.manifest is not None
        assert "sampling" not in result.manifest
        assert "sampling" not in result.extra

    def test_off_config_matches_default(self, tiny_spec):
        """mode="off" is indistinguishable from sampling=None."""
        default = run_single(tiny_spec, TAGE, 1500)
        off = run_single(tiny_spec, TAGE, 1500, sampling=SamplingConfig())
        assert off == default
        assert off.manifest is not None and default.manifest is not None
        assert off.manifest["config_hash"] == default.manifest["config_hash"]

    def test_enabled_records_config_in_manifest(self, tiny_spec):
        config = SamplingConfig(mode="periodic", interval=200, warmup=300)
        result = run_single(tiny_spec, TAGE, 1500, sampling=config)
        assert result.manifest is not None
        assert result.manifest["sampling"] == config.to_payload()
        assert result.extra["sampling"]["mode"] == "periodic"


class TestCacheKeying:
    """Sampling must be part of the result-cache identity."""

    def test_enabled_changes_config_hash(self, tiny_spec):
        pipeline = PipelineConfig()
        exact = build_manifest(tiny_spec, TAGE, 1500, pipeline)
        sampled = build_manifest(
            tiny_spec,
            TAGE,
            1500,
            pipeline,
            sampling=SamplingConfig(mode="periodic"),
        )
        assert exact.config_hash != sampled.config_hash

    def test_off_is_hash_stable(self, tiny_spec):
        """Sampling off must not perturb pre-sampling cache keys."""
        pipeline = PipelineConfig()
        bare = build_manifest(tiny_spec, TAGE, 1500, pipeline)
        explicit_none = build_manifest(
            tiny_spec, TAGE, 1500, pipeline, sampling=None
        )
        explicit_off = build_manifest(
            tiny_spec, TAGE, 1500, pipeline, sampling=SamplingConfig()
        )
        assert bare.config_hash == explicit_none.config_hash
        assert bare.config_hash == explicit_off.config_hash
        assert "sampling" not in bare.as_dict()

    def test_distinct_configs_get_distinct_hashes(self, tiny_spec):
        pipeline = PipelineConfig()
        hashes = {
            build_manifest(
                tiny_spec, TAGE, 1500, pipeline, sampling=config
            ).config_hash
            for config in (
                SamplingConfig(mode="periodic"),
                SamplingConfig(mode="periodic", coverage=0.2),
                SamplingConfig(mode="periodic", interval=2000),
                SamplingConfig(mode="simpoint"),
            )
        }
        assert len(hashes) == 4

    def test_no_aliasing_through_the_cache(self, tiny_spec, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "results"))
        config = SamplingConfig(mode="periodic", interval=200, warmup=300)
        exact = run_single(tiny_spec, TAGE, 1500)
        sampled = run_single(tiny_spec, TAGE, 1500, sampling=config)
        # The sampled run must not have been served the cached exact row.
        assert "sampling" in sampled.extra
        assert "sampling" not in exact.extra
        # And both hit their own entry on rerun.
        assert run_single(tiny_spec, TAGE, 1500) == exact
        assert run_single(tiny_spec, TAGE, 1500, sampling=config) == sampled
