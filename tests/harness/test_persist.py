"""Unit tests for result persistence."""

import json

import pytest

from repro.errors import ExperimentError
from repro.harness.persist import load_results, save_results
from repro.harness.runner import RunResult
from repro.harness.scale import SCALES


def sample_results():
    return [
        RunResult(
            workload="hpc-fft",
            category="hpc",
            system="perfect-repair",
            ipc=1.23,
            mpki=2.5,
            instructions=100_000,
            cycles=81_300,
            mispredictions=250,
            extra={"repair": {"events": 250}},
        ),
        RunResult(
            workload="hpc-fft",
            category="hpc",
            system="baseline-tage",
            ipc=1.20,
            mpki=3.4,
            instructions=100_000,
            cycles=83_333,
            mispredictions=340,
            extra={},
        ),
    ]


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sweep.json"
        results = sample_results()
        save_results(path, results, scale=SCALES["smoke"], label="unit test")
        loaded = load_results(path)
        assert loaded == results

    def test_metadata_recorded(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_results(path, sample_results(), scale=SCALES["small"], label="x")
        payload = json.loads(path.read_text())
        assert payload["scale"]["name"] == "small"
        assert payload["label"] == "x"
        assert payload["repro_version"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError, match="cannot load"):
            load_results(tmp_path / "nope.json")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError):
            load_results(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "old.json"
        save_results(path, sample_results())
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ExperimentError, match="format version"):
            load_results(path)

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "sweep.json"
        save_results(path, sample_results())
        assert path.exists()

    def test_manifest_round_trips(self, tmp_path):
        path = tmp_path / "sweep.json"
        manifest = {
            "config_hash": "aa" * 8,
            "workload_hash": "bb" * 8,
            "workload": "hpc-fft",
            "wall_s": 1.25,
        }
        results = sample_results()
        results[0] = RunResult(
            **{
                **{f: getattr(results[0], f) for f in (
                    "workload", "category", "system", "ipc", "mpki",
                    "instructions", "cycles", "mispredictions", "extra",
                )},
                "manifest": manifest,
            }
        )
        save_results(path, results)
        loaded = load_results(path)
        assert loaded[0].manifest == manifest
        assert loaded[1].manifest is None

    def test_legacy_payload_without_manifest_loads(self, tmp_path):
        """Files written before the manifest field must still load."""
        path = tmp_path / "legacy.json"
        save_results(path, sample_results())
        payload = json.loads(path.read_text())
        for row in payload["results"]:
            row.pop("manifest", None)
        path.write_text(json.dumps(payload))
        loaded = load_results(path)
        assert loaded == sample_results()
        assert all(r.manifest is None for r in loaded)

    def test_malformed_row_names_offending_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_results(path, sample_results())
        payload = json.loads(path.read_text())
        del payload["results"][0]["ipc"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ExperimentError, match="malformed row"):
            load_results(path)
