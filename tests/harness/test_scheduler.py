"""Tests for the scheduler/executor split behind run_matrix and serve."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.errors import ConfigError
from repro.harness.executors import (
    InlineExecutor,
    ProcessPoolExecutorBackend,
    ShardedExecutor,
)
from repro.harness.runner import run_single, validate_shard
from repro.harness.scheduler import (
    Scheduler,
    SimJob,
    default_executor,
    execute_job,
)
from repro.harness.systems import SystemConfig

_BASE = SystemConfig(name="baseline-tage", local_entries=None, scheme=None)
_LOCAL = SystemConfig(
    name="forward-walk-coalesce", scheme="forward", ports="32-4-2", coalesce=True
)
_BRANCHES = 1200


@pytest.fixture(autouse=True)
def _no_disk(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)


class TestValidateShard:
    def test_accepts_valid(self):
        assert validate_shard((1, 1)) == (1, 1)
        assert validate_shard((3, 8)) == (3, 8)
        assert validate_shard((8, 8)) == (8, 8)

    @pytest.mark.parametrize("shard", [(0, 4), (5, 4), (-1, 4), (1, 0), (2, -3)])
    def test_rejects_out_of_range(self, shard):
        with pytest.raises(ConfigError, match="shard"):
            validate_shard(shard)


class TestPlanning:
    def test_workload_major_order(self, tiny_spec):
        other = dataclasses.replace(tiny_spec, name="tiny-b", seed=8)
        jobs = Scheduler().plan([tiny_spec, other], [_BASE, _LOCAL], _BRANCHES)
        assert [(j.spec.name, j.system.name) for j in jobs] == [
            ("tiny", "baseline-tage"),
            ("tiny", "forward-walk-coalesce"),
            ("tiny-b", "baseline-tage"),
            ("tiny-b", "forward-walk-coalesce"),
        ]

    def test_shards_partition_the_plan(self, tiny_spec):
        specs = [
            dataclasses.replace(tiny_spec, name=f"tiny-{i}", seed=10 + i)
            for i in range(5)
        ]
        scheduler = Scheduler()
        full = scheduler.plan(specs, [_BASE, _LOCAL], _BRANCHES)
        recombined = []
        for k in (1, 2, 3):
            recombined.extend(
                scheduler.plan(specs, [_BASE, _LOCAL], _BRANCHES, shard=(k, 3))
            )
        assert recombined == full

    def test_plan_carries_cache_override(self, tiny_spec):
        jobs = Scheduler(use_result_cache=False).plan([tiny_spec], [_BASE], 500)
        assert jobs[0].use_result_cache is False

    def test_jobs_are_picklable(self, tiny_spec):
        job = SimJob(spec=tiny_spec, system=_BASE, n_branches=500)
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job

    def test_manifest_matches_run_manifest(self, tiny_spec):
        job = SimJob(spec=tiny_spec, system=_BASE, n_branches=_BRANCHES)
        planned = job.manifest()
        ran = run_single(tiny_spec, _BASE, _BRANCHES).manifest
        assert ran is not None
        assert planned["config_hash"] == ran["config_hash"]
        assert planned["workload_hash"] == ran["workload_hash"]


class TestDefaultExecutor:
    def test_small_job_lists_run_inline(self):
        assert isinstance(default_executor(4, 2), InlineExecutor)

    def test_eight_jobs_fan_out(self):
        executor = default_executor(8, 2)
        assert isinstance(executor, ProcessPoolExecutorBackend)

    def test_workers_one_forces_inline(self):
        assert isinstance(default_executor(100, 10, workers=1), InlineExecutor)

    def test_workers_pin_pool_size(self):
        executor = default_executor(16, 4, workers=2)
        assert isinstance(executor, ProcessPoolExecutorBackend)
        assert executor.workers == 2

    def test_explicit_parallel_false(self):
        assert isinstance(
            default_executor(100, 10, parallel=False), InlineExecutor
        )


class TestExecution:
    def test_inline_matches_run_single(self, tiny_spec):
        direct = run_single(tiny_spec, _LOCAL, _BRANCHES)
        [scheduled] = Scheduler().run(
            [SimJob(spec=tiny_spec, system=_LOCAL, n_branches=_BRANCHES)]
        )
        assert (scheduled.ipc, scheduled.mpki, scheduled.cycles) == (
            direct.ipc,
            direct.mpki,
            direct.cycles,
        )

    def test_execute_job_runs_one(self, tiny_spec):
        result = execute_job(SimJob(spec=tiny_spec, system=_BASE, n_branches=800))
        assert result.workload == "tiny" and result.cycles > 0

    def test_sharded_covers_the_whole_matrix(self, tiny_spec):
        specs = [
            dataclasses.replace(tiny_spec, name=f"tiny-{i}", seed=20 + i)
            for i in range(3)
        ]
        jobs = Scheduler().plan(specs, [_BASE], 600)
        inline = Scheduler().run(jobs)
        sharded = Scheduler().run(jobs, ShardedExecutor(shards=2))
        assert [(r.workload, r.system, r.ipc, r.cycles) for r in sharded] == [
            (r.workload, r.system, r.ipc, r.cycles) for r in inline
        ]

    def test_sharded_more_shards_than_jobs(self, tiny_spec):
        jobs = Scheduler().plan([tiny_spec], [_BASE], 600)
        results = Scheduler().run(jobs, ShardedExecutor(shards=5))
        assert len(results) == 1

    def test_sharded_rejects_bad_count(self):
        with pytest.raises(ConfigError):
            ShardedExecutor(shards=0)


class TestCacheSplit:
    def test_no_cache_means_all_misses(self, tiny_spec):
        jobs = Scheduler().plan([tiny_spec], [_BASE, _LOCAL], 700)
        hits, misses = Scheduler().split_cached(jobs)
        assert hits == {} and misses == jobs

    def test_split_after_warm_run(self, tiny_spec, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "results"))
        scheduler = Scheduler()
        jobs = scheduler.plan([tiny_spec], [_BASE, _LOCAL], 700)
        first = scheduler.run(jobs)
        hits, misses = scheduler.split_cached(jobs)
        assert misses == [] and sorted(hits) == [0, 1]
        assert [hits[i].cycles for i in (0, 1)] == [r.cycles for r in first]

    def test_partial_split(self, tiny_spec, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "results"))
        scheduler = Scheduler()
        jobs = scheduler.plan([tiny_spec], [_BASE, _LOCAL], 700)
        scheduler.run(jobs[:1])
        hits, misses = scheduler.split_cached(jobs)
        assert sorted(hits) == [0]
        assert misses == [jobs[1]]
