"""Unit tests for the experiment harness (scale, systems, runner, report)."""

import pytest

from repro.errors import ConfigError, ExperimentError
from repro.harness.report import Figure, format_bars, format_table, pct
from repro.harness.runner import (
    load_trace,
    pair_results,
    run_matrix,
    run_single,
    select_workloads,
)
from repro.harness.scale import SCALES, Scale, current_scale, resolve_scale
from repro.harness.systems import (
    PAPER_TABLE3,
    TABLE3_SYSTEMS,
    SystemConfig,
    build_system,
    table3_rows,
)


class TestScale:
    def test_known_scales(self):
        for name in ("smoke", "small", "medium", "full"):
            assert resolve_scale(name).name == name

    def test_unknown_scale(self):
        with pytest.raises(ExperimentError):
            resolve_scale("gigantic")

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"
        monkeypatch.delenv("REPRO_SCALE")
        assert current_scale(default="medium").name == "medium"

    def test_workload_count(self):
        smoke = SCALES["smoke"]
        assert smoke.workload_count(29) == 1
        full = SCALES["full"]
        assert full.workload_count(29) == 29


class TestSystems:
    def test_table3_covers_paper_rows(self):
        names = {cfg.name for cfg in TABLE3_SYSTEMS}
        assert names == set(PAPER_TABLE3)

    def test_build_baseline(self):
        baseline, unit = build_system(
            SystemConfig(name="base", local_entries=None, scheme=None)
        )
        assert unit is None
        assert baseline.name == "tage-7.1kb"

    def test_build_every_table3_system(self):
        for config in table3_rows():
            baseline, unit = build_system(config)
            assert unit is not None
            assert unit.storage_bits() > 0

    def test_build_multistage(self):
        _, unit = build_system(SystemConfig(name="ms", scheme="multistage"))
        from repro.core.repair.multistage import MultiStageUnit

        assert isinstance(unit, MultiStageUnit)

    def test_build_generic_local(self):
        _, unit = build_system(
            SystemConfig(name="g", scheme="forward", generic_local=True)
        )
        from repro.core.two_level_local import TwoLevelLocalPredictor

        assert isinstance(unit.local, TwoLevelLocalPredictor)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            build_system(SystemConfig(name="x", scheme="magic"))

    def test_unknown_tage(self):
        with pytest.raises(ConfigError):
            build_system(SystemConfig(name="x", tage="kb1024", scheme="perfect"))

    def test_tage_presets(self):
        for preset in ("kb8", "kb9", "kb64"):
            baseline, _ = build_system(
                SystemConfig(name="b", tage=preset, local_entries=None, scheme=None)
            )
            assert baseline.storage_bits() > 0


class TestRunner:
    @pytest.fixture(autouse=True)
    def no_disk_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")

    @pytest.fixture
    def scale(self):
        return Scale(name="test", branches_per_workload=800, workloads_per_category=1)

    def test_run_single(self, tiny_spec):
        result = run_single(
            tiny_spec, SystemConfig(name="p", scheme="perfect"), n_branches=800
        )
        assert result.workload == "tiny"
        assert result.ipc > 0
        assert result.instructions > 0

    def test_run_matrix_serial(self, tiny_spec, scale):
        systems = [
            SystemConfig(name="baseline-tage", local_entries=None, scheme=None),
            SystemConfig(name="p", scheme="perfect"),
        ]
        results = run_matrix([tiny_spec], systems, scale, parallel=False)
        assert len(results) == 2
        assert {r.system for r in results} == {"baseline-tage", "p"}

    def test_pair_results(self, tiny_spec, scale):
        systems = [
            SystemConfig(name="baseline-tage", local_entries=None, scheme=None),
            SystemConfig(name="p", scheme="perfect"),
            SystemConfig(name="n", scheme="none"),
        ]
        results = run_matrix([tiny_spec], systems, scale, parallel=False)
        paired = pair_results(results, "baseline-tage")
        assert set(paired) == {"p", "n"}
        assert paired["p"][0].baseline_ipc > 0

    def test_select_workloads_covers_categories(self, scale):
        workloads = select_workloads(scale)
        assert len(workloads) == 7

    def test_trace_disk_cache(self, tiny_spec, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        first = load_trace(tiny_spec, 300)
        assert (tmp_path / "cache").exists()
        second = load_trace(tiny_spec, 300)
        assert first == second


class TestReport:
    def test_pct(self):
        assert pct(0.123) == "+12.3%"
        assert pct(-0.05) == "-5.0%"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [("a", 1), ("long-name", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_format_bars_signs(self):
        text = format_bars(["up", "down"], [0.5, -0.25])
        assert "#" in text
        assert "-" in text

    def test_format_bars_validation(self):
        with pytest.raises(ConfigError):
            format_bars(["a"], [1.0, 2.0])

    def test_figure_render(self):
        figure = Figure("figX", "demo")
        figure.add_table(["a"], [(1,)])
        figure.add_bars(["x"], [0.1])
        text = figure.render()
        assert "figX" in text and "demo" in text
