"""Harness integration of the batch sweep kernel: gating, job marking,
executor routing, cache keys, and the CLI surface."""

import json

import pytest

from repro.cli import main
from repro.harness.batch import (
    BATCH_MIN_CONFIGS,
    BatchExecutor,
    batch_enabled,
    mark_batch_jobs,
)
from repro.harness.runner import run_matrix
from repro.harness.sampling import SamplingConfig
from repro.harness.scale import Scale
from repro.harness.scheduler import Scheduler
from repro.harness.systems import TABLE3_SYSTEMS, resolve_system
from repro.workloads.suite import get_workload

SPEC_NAMES = ["bimodal:6", "bimodal:8", "gshare:6:4", "local2l:5:4:7"]


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    monkeypatch.delenv("REPRO_BATCH", raising=False)


def _scale(branches=2000):
    return Scale(name="t", branches_per_workload=branches, workloads_per_category=1)


def _plan(systems, batch=True, sampling=None):
    return Scheduler().plan(
        [get_workload("hpc-fft")], systems, 2000, sampling=sampling, batch=batch
    )


class TestGate:
    def test_explicit_flag_wins_when_env_unset(self):
        assert batch_enabled(True) is True
        assert batch_enabled(False) is False
        assert batch_enabled(None) is False

    def test_env_off_vetoes_explicit_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "off")
        assert batch_enabled(True) is False

    def test_env_on_enables_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "on")
        assert batch_enabled(None) is True
        assert batch_enabled(False) is False


class TestMarking:
    def test_group_of_table_specs_is_marked(self):
        jobs = _plan([resolve_system(name) for name in SPEC_NAMES])
        assert all(job.batch for job in jobs)

    def test_small_group_stays_scalar(self):
        names = SPEC_NAMES[: BATCH_MIN_CONFIGS - 1]
        jobs = _plan([resolve_system(name) for name in names])
        assert not any(job.batch for job in jobs)

    def test_table3_systems_never_marked(self):
        jobs = _plan(list(TABLE3_SYSTEMS))
        assert not any(job.batch for job in jobs)

    def test_sampled_jobs_never_marked(self):
        jobs = _plan(
            [resolve_system(name) for name in SPEC_NAMES],
            sampling=SamplingConfig(mode="periodic"),
        )
        assert not any(job.batch for job in jobs)

    def test_marking_preserves_job_count_and_order(self):
        systems = [resolve_system(name) for name in SPEC_NAMES] + [
            resolve_system("baseline-tage")
        ]
        jobs = _plan(systems)
        assert [job.system.name for job in jobs] == [s.name for s in systems]
        assert [job.batch for job in jobs] == [True] * 4 + [False]

    def test_mark_is_pure(self):
        jobs = _plan([resolve_system(name) for name in SPEC_NAMES], batch=False)
        marked = mark_batch_jobs(jobs)
        assert not any(job.batch for job in jobs)
        assert all(job.batch for job in marked)


class TestManifests:
    def test_batch_results_get_distinct_cache_keys(self):
        jobs = _plan([resolve_system(name) for name in SPEC_NAMES])
        scalar_jobs = _plan(
            [resolve_system(name) for name in SPEC_NAMES], batch=False
        )
        for batch_job, scalar_job in zip(jobs, scalar_jobs):
            batch_manifest = batch_job.manifest()
            scalar_manifest = scalar_job.manifest()
            assert batch_manifest["engine"] == "batch"
            assert "engine" not in scalar_manifest
            assert (
                batch_manifest["config_hash"] != scalar_manifest["config_hash"]
            )


class TestExecution:
    def test_matrix_identical_to_exact_engine(self):
        workloads = [get_workload("hpc-fft")]
        systems = [resolve_system(name) for name in SPEC_NAMES]
        exact = run_matrix(workloads, systems, _scale(), batch=False)
        batch = run_matrix(workloads, systems, _scale(), batch=True)
        assert [(r.workload, r.system) for r in exact] == [
            (r.workload, r.system) for r in batch
        ]
        for e, b in zip(exact, batch):
            assert e.mpki == b.mpki
            assert e.mispredictions == b.mispredictions
            assert e.instructions == b.instructions
            assert b.ipc == 0.0 and b.cycles == 0
            assert b.extra["batch"]["engine"] == "columnar"

    def test_result_cache_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "results"))
        workloads = [get_workload("hpc-fft")]
        systems = [resolve_system(name) for name in SPEC_NAMES]
        first = run_matrix(workloads, systems, _scale(), batch=True)
        second = run_matrix(workloads, systems, _scale(), batch=True)
        for a, b in zip(first, second):
            assert a.mpki == b.mpki
            assert a.manifest["engine"] == "batch"

    def test_executor_forwards_unmarked_jobs(self):
        systems = [resolve_system(name) for name in SPEC_NAMES] + [
            resolve_system("baseline-tage")
        ]
        jobs = _plan(systems)
        results = BatchExecutor().execute(jobs)
        assert len(results) == len(jobs)
        tage = results[-1]
        assert tage.system == "baseline-tage"
        assert tage.ipc > 0.0 and tage.cycles > 0

    def test_column_cache_hits_counted(self):
        from repro.telemetry import TELEMETRY

        workloads = [get_workload("hpc-fft")]
        systems = [resolve_system(name) for name in SPEC_NAMES]
        # The first batch sweep generates and writes the trace file;
        # later sweeps decode it once and then hit the columnar cache.
        run_matrix(workloads, systems, _scale(), batch=True)
        TELEMETRY.enable()
        try:
            before = TELEMETRY.registry.counter("trace.column_cache_hits").value
            # Telemetry forces run_matrix to the exact engine, so drive
            # the executor directly: first execute decodes (miss), the
            # second is served by the decode cache (hit).
            BatchExecutor().execute(_plan(systems))
            BatchExecutor().execute(_plan(systems))
            after = TELEMETRY.registry.counter("trace.column_cache_hits").value
        finally:
            TELEMETRY.disable()
        assert after > before


class TestCli:
    def test_sweep_batch_flag_runs(self, capsys):
        code = main(
            ["sweep", "--branches", "1500", "--per-category", "1",
             "--systems", ",".join(SPEC_NAMES), "--batch"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bimodal:6:2" in out
        # Functional-only rows render IPC as "-".
        assert " -  " in out

    def test_sweep_batch_with_sampling_is_config_error(self, capsys):
        code = main(
            ["sweep", "--branches", "1500", "--systems", "bimodal:6",
             "--batch", "--sample"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "mutually exclusive" in err

    def test_run_accepts_spec_strings(self, capsys):
        code = main(
            ["run", "--workload", "hpc-fft", "--system", "gshare:8:6",
             "--branches", "1500"]
        )
        assert code == 0
        assert "gshare:8:6" in capsys.readouterr().out

    def test_unknown_system_exits_one(self, capsys):
        code = main(
            ["run", "--workload", "hpc-fft", "--system", "no-such-system"]
        )
        assert code == 1
        assert "unknown system" in capsys.readouterr().err

    def test_perf_batch_section(self, tmp_path, capsys):
        out_path = tmp_path / "perf.json"
        code = main(
            ["perf", "--branches", "600", "--repeats", "1",
             "--systems", "baseline-tage", "--no-sampling", "--no-specialize",
             "--out", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        batch = payload["batch"]
        assert batch["configs"] == 16
        assert batch["mpki_identical"] is True
        assert "batch kernel" in capsys.readouterr().out
