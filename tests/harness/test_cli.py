"""Unit tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "hpc-fft"])
        assert args.system == "forward-walk-coalesce"
        assert args.branches == 20_000

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8321
        assert args.workers == 2
        assert args.executor == "inline"
        assert args.queue_limit == 64
        assert not args.no_result_cache


class TestPerfCommand:
    def test_perf_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_perf.json"
        code = main(
            ["perf", "--branches", "800", "--repeats", "1",
             "--systems", "baseline-tage", "--no-sampling",
             "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "branches/s" in out and "warm sweep" in out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["throughput"]["baseline-tage"]["branches_per_s"] > 0
        assert payload["warm_sweep"]["speedup"] > 1.0
        assert payload["env"]["code_fingerprint"]

    def test_perf_profile_flag(self, capsys, tmp_path):
        code = main(
            ["perf", "--branches", "600", "--repeats", "1",
             "--systems", "baseline-tage", "--no-sampling",
             "--out", str(tmp_path / "b.json"), "--profile", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cProfile: baseline-tage" in out
        assert "tottime" in out

    def test_run_no_result_cache_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "results"))
        code = main(
            ["run", "--workload", "hpc-fft", "--branches", "900",
             "--no-result-cache"]
        )
        assert code == 0
        assert not (tmp_path / "results").exists()


class TestCommands:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "202 workloads" in out
        assert "hpc-fft" in out

    def test_list_workloads_filtered(self, capsys):
        assert main(["list-workloads", "--category", "hpc"]) == 0
        out = capsys.readouterr().out
        assert "8 workloads" in out
        assert "server-" not in out

    def test_list_systems(self, capsys):
        assert main(["list-systems"]) == 0
        out = capsys.readouterr().out
        assert "forward-walk" in out and "perfect-repair" in out

    def test_run(self, capsys):
        code = main(
            ["run", "--workload", "hpc-fft", "--system", "perfect-repair",
             "--branches", "1200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "MPKI" in out
        assert "repair events" in out

    def test_run_baseline_has_no_repair_line(self, capsys):
        main(["run", "--workload", "hpc-fft", "--system", "baseline-tage",
              "--branches", "1200"])
        out = capsys.readouterr().out
        assert "repair events" not in out

    def test_run_unknown_system(self, capsys):
        # Unknown systems are a ConfigError (exit 1 + stderr message),
        # not a bare SystemExit: the name may now also be a
        # table-predictor spec string, and both failures share the
        # CLI's ReproError path.
        code = main(["run", "--workload", "hpc-fft", "--system", "quantum"])
        assert code == 1
        assert "unknown system" in capsys.readouterr().err

    def test_compare_smoke(self, capsys):
        code = main(["compare", "--workload", "mm-animation", "--branches", "900"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline-tage" in out
        assert "forward-walk-coalesce" in out

    def test_compare_workers_one_is_sequential(self, capsys):
        code = main(
            ["compare", "--workload", "mm-animation", "--branches", "900",
             "--workers", "1"]
        )
        assert code == 0
        assert "baseline-tage" in capsys.readouterr().out

    def test_diagnose(self, capsys):
        code = main(
            ["diagnose", "--workload", "mm-animation", "--system",
             "forward-walk", "--branches", "1500"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "override precision" in out
        assert "repairs/event" in out


class TestTelemetryCommands:
    def test_run_telemetry_then_summarize(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        code = main(
            ["run", "--workload", "hpc-fft", "--system", "forward-walk",
             "--branches", "1200", "--telemetry", str(trace)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out and str(trace) in out
        assert trace.exists()

        assert main(["telemetry", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "hpc-fft" in out
        assert "misprediction episodes" in out
        assert "cycle breakdown" in out

    def test_telemetry_export_prom(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        main(["run", "--workload", "hpc-fft", "--branches", "1200",
              "--telemetry", str(trace)])
        capsys.readouterr()
        assert main(["telemetry", str(trace), "--export", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_pipeline_episodes counter" in out

    def test_telemetry_export_json(self, tmp_path, capsys):
        import json

        trace = tmp_path / "run.jsonl"
        main(["run", "--workload", "hpc-fft", "--branches", "1200",
              "--telemetry", str(trace)])
        capsys.readouterr()
        assert main(["telemetry", str(trace), "--export", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["pipeline.episodes"] > 0

    def test_run_telemetry_leaves_global_state_off(self, tmp_path, capsys):
        from repro.telemetry import TELEMETRY

        was_enabled = TELEMETRY.enabled
        main(["run", "--workload", "hpc-fft", "--branches", "1200",
              "--telemetry", str(tmp_path / "t.jsonl")])
        assert TELEMETRY.enabled == was_enabled
        assert not TELEMETRY.tracing


class TestSamplingFlags:
    def test_run_defaults_to_exact(self):
        from repro.cli import _sampling_config

        args = build_parser().parse_args(["run", "--workload", "hpc-fft"])
        assert _sampling_config(args) is None

    def test_sample_shortcut_means_periodic(self):
        from repro.cli import _sampling_config

        args = build_parser().parse_args(
            ["run", "--workload", "hpc-fft", "--sample"]
        )
        config = _sampling_config(args)
        assert config is not None and config.mode == "periodic"
        assert config.interval == 4000 and config.warmup == 6000

    def test_explicit_mode_and_knobs(self):
        from repro.cli import _sampling_config

        args = build_parser().parse_args(
            ["compare", "--workload", "hpc-fft", "--sample-mode", "simpoint",
             "--sample-interval", "512", "--sample-coverage", "0.25",
             "--sample-warmup", "1024"]
        )
        config = _sampling_config(args)
        assert config is not None
        assert config.mode == "simpoint"
        assert config.interval == 512
        assert config.coverage == 0.25
        assert config.warmup == 1024

    def test_mode_off_beats_sample_flag(self):
        from repro.cli import _sampling_config

        args = build_parser().parse_args(
            ["run", "--workload", "hpc-fft", "--sample", "--sample-mode", "off"]
        )
        assert _sampling_config(args) is None

    def test_sampled_run_prints_confidence(self, capsys):
        code = main(
            ["run", "--workload", "hpc-fft", "--branches", "2500",
             "--sample", "--sample-interval", "200", "--sample-warmup", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sampled" in out
        assert "detailed" in out


class TestSweepCommand:
    def test_parse_shard(self):
        from repro.cli import _parse_shard

        assert _parse_shard("2/8") == (2, 8)
        for bad in ("2", "a/b", "1/2/3", ""):
            with pytest.raises(SystemExit):
                _parse_shard(bad)

    def test_parse_shard_rejects_out_of_range(self):
        from repro.cli import _parse_shard
        from repro.errors import ConfigError

        for bad in ("5/4", "0/4", "-1/4", "1/0", "2/-3"):
            with pytest.raises(ConfigError, match="shard"):
                _parse_shard(bad)

    def test_sweep_out_of_range_shard_is_an_error_exit(self, capsys):
        code = main(
            ["sweep", "--branches", "500", "--per-category", "1",
             "--systems", "baseline-tage", "--shard", "9/4"]
        )
        assert code == 1
        assert "shard" in capsys.readouterr().err

    def test_sweep_sharded(self, capsys):
        code = main(
            ["sweep", "--branches", "700", "--per-category", "1",
             "--systems", "baseline-tage,no-repair", "--shard", "1/4",
             "--workers", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shard 1/4" in out
        assert "IPC" in out and "MPKI" in out

    def test_sweep_shards_partition_matrix(self, capsys):
        argv = ["sweep", "--branches", "700", "--per-category", "1",
                "--systems", "baseline-tage", "--workers", "1"]
        assert main(argv) == 0
        full = capsys.readouterr().out
        total = int(full.rsplit("\n", 2)[-2].split()[0])
        sharded = 0
        for k in (1, 2, 3):
            assert main(argv + ["--shard", f"{k}/3"]) == 0
            out = capsys.readouterr().out
            sharded += int(out.rsplit("\n", 2)[-2].split()[0])
        assert sharded == total

    def test_sweep_unknown_system(self, capsys):
        code = main(["sweep", "--systems", "nope", "--branches", "500"])
        assert code == 1
        assert "unknown system" in capsys.readouterr().err


class TestTraceCommands:
    """The `repro trace` family, exercised offline on committed fixtures."""

    CHAMPSIM = "tests/data/traces/quicksort.champsim.gz"
    BT9 = "tests/data/traces/dijkstra.bt9"

    @pytest.fixture(autouse=True)
    def _trace_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
        monkeypatch.setenv("REPRO_OFFLINE", "1")

    def test_info_pinned_text(self, capsys):
        assert main(["trace", "info", self.CHAMPSIM]) == 0
        assert capsys.readouterr().out == (
            f"path:          {self.CHAMPSIM}\n"
            "format:        champsim (adapter v1)\n"
            "compression:   gzip\n"
            "records:       1612\n"
            "instructions:  5232\n"
            "conditional:   1486\n"
            "static sites:  6\n"
            "taken rate:    0.7369\n"
            "pc range:      0x40000000..0x400001c0\n"
            "target range:  0x40000020..0x40000240\n"
            "kinds:         COND=1486 CALL=63 RET=63\n"
        )

    def test_info_json_format(self, capsys):
        import json

        assert main(["trace", "info", self.BT9, "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["format"] == "bt9"
        assert info["compression"] is None
        assert info["records"] == 6121
        assert info["static_sites"] == 5
        assert info["kind_counts"] == {"COND": 6072, "RET": 1, "UNCOND": 48}
        assert info["adapter_version"] == 1

    def test_info_bad_file_is_error_exit(self, tmp_path, capsys):
        bad = tmp_path / "junk.trace"
        bad.write_bytes(b"\x01\x02\x03 definitely not a trace")
        assert main(["trace", "info", str(bad)]) == 1
        assert "unrecognised" in capsys.readouterr().err

    def test_import_list_run_round_trip(self, capsys):
        assert main(["trace", "import", self.CHAMPSIM]) == 0
        out = capsys.readouterr().out
        assert "imported quicksort: 1612 records (champsim" in out
        assert "sha256:" in out

        assert main(["trace", "list"]) == 0
        listing = capsys.readouterr().out
        assert "quicksort" in listing and "champsim" in listing

        assert main(
            ["run", "--workload", "quicksort",
             "--system", "baseline-tage", "--branches", "1500"]
        ) == 0
        assert "MPKI" in capsys.readouterr().out

    def test_import_custom_name(self, capsys):
        assert main(
            ["trace", "import", self.BT9, "--name", "my-dijkstra"]
        ) == 0
        assert "imported my-dijkstra: 6121 records (bt9" in (
            capsys.readouterr().out
        )

    def test_fetch_from_committed_manifest(self, capsys):
        assert main(
            ["trace", "fetch", "public-dijkstra",
             "--manifest", "traces/public-traces.json"]
        ) == 0
        out = capsys.readouterr().out
        assert "fetched public-dijkstra: 6121 records (bt9, verified sha256)" in out

    def test_list_empty_store(self, capsys):
        assert main(["trace", "list"]) == 0
        assert "no imported traces" in capsys.readouterr().out

    def test_sweep_workloads_flag_mixes_sources(self, capsys):
        assert main(["trace", "import", self.CHAMPSIM]) == 0
        capsys.readouterr()
        assert main(
            ["sweep", "--workloads", "quicksort,hpc-fft",
             "--systems", "baseline-tage", "--branches", "800",
             "--workers", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "quicksort" in out and "hpc-fft" in out

    def test_run_unknown_workload_mentions_import(self, capsys):
        assert main(
            ["run", "--workload", "no-such-trace", "--branches", "500"]
        ) == 1
        err = capsys.readouterr().err
        assert "repro trace import" in err or "trace store" in err
