"""The perf-compare tool: section tolerance, batch and specialize
annotations."""

import importlib.util
import json
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "perf_compare",
    Path(__file__).resolve().parents[2] / "tools" / "perf_compare.py",
)
assert _SPEC is not None and _SPEC.loader is not None
perf_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(perf_compare)


def _payload(**overrides):
    payload = {
        "bench": "perf",
        "schema_version": 4,
        "throughput": {"baseline-tage": {"branches_per_s": 25_000.0}},
        "warm_sweep": {"speedup": 100.0},
        "sampling": None,
        "batch": {
            "configs": 16,
            "speedup": 80.0,
            "mpki_identical": True,
        },
        "specialize": {
            "systems": {
                "baseline-tage": {"speedup": 2.5, "stats_identical": True}
            },
            "abort_probe": {"aborted": True, "stats_identical": True},
        },
    }
    payload.update(overrides)
    return payload


def _run(tmp_path, baseline, fresh):
    base_path = tmp_path / "base.json"
    fresh_path = tmp_path / "fresh.json"
    base_path.write_text(json.dumps(baseline))
    fresh_path.write_text(json.dumps(fresh))
    return perf_compare.main([str(base_path), str(fresh_path)])


def test_identical_payloads_clean(tmp_path, capsys):
    assert _run(tmp_path, _payload(), _payload()) == 0
    assert "::warning::" not in capsys.readouterr().out


def test_missing_sections_skip_with_note(tmp_path, capsys):
    # A pre-batch baseline (no key at all) and a smoke run that skipped
    # sampling: both sides must be tolerated without a KeyError.
    baseline = _payload()
    del baseline["batch"]
    del baseline["sampling"]
    assert _run(tmp_path, baseline, _payload()) == 0
    out = capsys.readouterr().out
    assert "skipping 'batch' section" in out
    assert "skipping 'sampling' section" in out
    assert "::warning::" not in out


def test_batch_divergence_warns(tmp_path, capsys):
    fresh = _payload()
    fresh["batch"] = {"configs": 16, "speedup": 80.0, "mpki_identical": False}
    assert _run(tmp_path, _payload(), fresh) == 0
    assert "MPKI diverged" in capsys.readouterr().out


def test_batch_speedup_regression_warns(tmp_path, capsys):
    fresh = _payload()
    fresh["batch"] = {"configs": 16, "speedup": 8.0, "mpki_identical": True}
    assert _run(tmp_path, _payload(), fresh) == 0
    assert "batch-kernel speedup" in capsys.readouterr().out


def test_missing_specialize_section_skips_with_note(tmp_path, capsys):
    baseline = _payload()
    del baseline["specialize"]
    assert _run(tmp_path, baseline, _payload()) == 0
    out = capsys.readouterr().out
    assert "skipping 'specialize' section" in out
    assert "::warning::" not in out


def test_specialize_divergence_warns(tmp_path, capsys):
    fresh = _payload()
    fresh["specialize"]["systems"]["baseline-tage"]["stats_identical"] = False
    assert _run(tmp_path, _payload(), fresh) == 0
    assert "specialized-engine stats diverged" in capsys.readouterr().out


def test_specialize_speedup_regression_warns(tmp_path, capsys):
    fresh = _payload()
    fresh["specialize"]["systems"]["baseline-tage"]["speedup"] = 1.2
    assert _run(tmp_path, _payload(), fresh) == 0
    assert "specialized-engine speedup" in capsys.readouterr().out


def test_abort_probe_divergence_warns(tmp_path, capsys):
    fresh = _payload()
    fresh["specialize"]["abort_probe"]["stats_identical"] = False
    assert _run(tmp_path, _payload(), fresh) == 0
    assert "guard-abort path diverged" in capsys.readouterr().out
