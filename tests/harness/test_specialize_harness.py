"""Harness integration of the specialized engines: gating, manifests,
scheduler/service plumbing, and the CLI surface."""

import pytest

from repro.cli import main
from repro.errors import ConfigError, ServiceError
from repro.harness.runner import run_matrix, run_single
from repro.harness.sampling import SamplingConfig
from repro.harness.scale import Scale
from repro.harness.scheduler import Scheduler
from repro.harness.specialize import (
    specialize_checkpoint_interval,
    specialize_enabled,
    specialize_engine_tag,
    specialize_force_abort,
    specialize_profile_branches,
)
from repro.harness.systems import resolve_system
from repro.pipeline.specialize import SPECIALIZE_VERSION
from repro.service.api import parse_request
from repro.workloads.suite import get_workload

_SYSTEM = resolve_system("baseline-tage")


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    monkeypatch.delenv("REPRO_SPECIALIZE", raising=False)
    monkeypatch.delenv("REPRO_SPECIALIZE_PROFILE", raising=False)
    monkeypatch.delenv("REPRO_SPECIALIZE_CHECKPOINT", raising=False)
    monkeypatch.delenv("REPRO_SPECIALIZE_FORCE_ABORT", raising=False)


def _scale(branches=4000):
    return Scale(name="t", branches_per_workload=branches, workloads_per_category=1)


class TestGate:
    def test_explicit_flag_wins_when_env_unset(self):
        assert specialize_enabled(True) is True
        assert specialize_enabled(False) is False
        assert specialize_enabled(None) is False

    def test_env_off_vetoes_explicit_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPECIALIZE", "off")
        assert specialize_enabled(True) is False

    def test_env_on_enables_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPECIALIZE", "on")
        assert specialize_enabled(None) is True
        assert specialize_enabled(False) is False


class TestEnvReaders:
    def test_defaults(self):
        assert specialize_profile_branches() == 2000
        assert specialize_checkpoint_interval() == 100_000
        assert specialize_force_abort() is None

    def test_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPECIALIZE_PROFILE", "500")
        monkeypatch.setenv("REPRO_SPECIALIZE_CHECKPOINT", "1000")
        monkeypatch.setenv("REPRO_SPECIALIZE_FORCE_ABORT", "0")
        assert specialize_profile_branches() == 500
        assert specialize_checkpoint_interval() == 1000
        assert specialize_force_abort() == 0

    @pytest.mark.parametrize(
        "env,value",
        [
            ("REPRO_SPECIALIZE_PROFILE", "zero"),
            ("REPRO_SPECIALIZE_PROFILE", "0"),
            ("REPRO_SPECIALIZE_CHECKPOINT", "-5"),
            ("REPRO_SPECIALIZE_FORCE_ABORT", "-1"),
            ("REPRO_SPECIALIZE_FORCE_ABORT", "soon"),
        ],
    )
    def test_invalid_values_raise_config_error(self, monkeypatch, env, value):
        monkeypatch.setenv(env, value)
        reader = {
            "REPRO_SPECIALIZE_PROFILE": specialize_profile_branches,
            "REPRO_SPECIALIZE_CHECKPOINT": specialize_checkpoint_interval,
            "REPRO_SPECIALIZE_FORCE_ABORT": specialize_force_abort,
        }[env]
        with pytest.raises(ConfigError):
            reader()


class TestManifests:
    def test_engine_tag_carries_version(self):
        assert specialize_engine_tag() == f"specialize-v{SPECIALIZE_VERSION}"

    def test_specialized_run_tags_engine_and_changes_config_hash(self):
        spec = get_workload("hpc-fft")
        plain = run_single(spec, _SYSTEM, 4000, use_result_cache=False)
        fast = run_single(
            spec, _SYSTEM, 4000, use_result_cache=False, specialize=True
        )
        assert fast.manifest["engine"] == specialize_engine_tag()
        assert "engine" not in plain.manifest
        assert fast.manifest["config_hash"] != plain.manifest["config_hash"]
        assert fast.manifest["specialize"]["engine"] == "specialized"
        # The stats themselves stay bit-identical.
        assert (fast.ipc, fast.mpki, fast.cycles) == (
            plain.ipc,
            plain.mpki,
            plain.cycles,
        )

    def test_telemetry_forces_generic(self):
        from repro.telemetry import TELEMETRY

        spec = get_workload("hpc-fft")
        TELEMETRY.enable()
        try:
            result = run_single(
                spec, _SYSTEM, 4000, use_result_cache=False, specialize=True
            )
        finally:
            TELEMETRY.disable()
        assert "engine" not in result.manifest
        assert "specialize" not in result.manifest

    def test_sampling_forces_generic(self):
        spec = get_workload("hpc-fft")
        result = run_single(
            spec,
            _SYSTEM,
            6000,
            use_result_cache=False,
            specialize=True,
            sampling=SamplingConfig(mode="periodic"),
        )
        assert "engine" not in result.manifest
        assert "specialize" not in result.manifest

    def test_scheduler_marks_jobs_and_manifests_match(self):
        jobs = Scheduler().plan(
            [get_workload("hpc-fft")], [_SYSTEM], 4000, specialize=True
        )
        assert all(job.specialize for job in jobs)
        assert jobs[0].manifest()["engine"] == specialize_engine_tag()
        plain = Scheduler().plan([get_workload("hpc-fft")], [_SYSTEM], 4000)
        assert "engine" not in plain[0].manifest()

    def test_sampled_jobs_drop_the_tag(self):
        jobs = Scheduler().plan(
            [get_workload("hpc-fft")],
            [_SYSTEM],
            4000,
            sampling=SamplingConfig(mode="periodic"),
            specialize=True,
        )
        assert "engine" not in jobs[0].manifest()


class TestMatrix:
    def test_env_on_engages_matrix(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPECIALIZE", "on")
        results = run_matrix(
            [get_workload("hpc-fft")], [_SYSTEM], _scale(), workers=1
        )
        assert results[0].manifest["specialize"]["engine"] == "specialized"

    def test_env_off_vetoes_explicit_request(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPECIALIZE", "off")
        results = run_matrix(
            [get_workload("hpc-fft")], [_SYSTEM], _scale(), workers=1,
            specialize=True,
        )
        assert "specialize" not in results[0].manifest

    def test_matrix_identical_to_plain(self):
        plain = run_matrix([get_workload("hpc-fft")], [_SYSTEM], _scale())
        fast = run_matrix(
            [get_workload("hpc-fft")], [_SYSTEM], _scale(), specialize=True
        )
        assert plain[0].mpki == fast[0].mpki
        assert plain[0].ipc == fast[0].ipc
        assert plain[0].mispredictions == fast[0].mispredictions


class TestService:
    def test_specialize_field_accepted_and_echoed(self):
        request = parse_request(
            {
                "kind": "run",
                "workload": "hpc-fft",
                "system": "baseline-tage",
                "branches": 4000,
                "specialize": True,
            }
        )
        assert request.payload["specialize"] is True
        assert all(job.specialize for job in request.jobs)

    def test_missing_field_defers_to_environment(self, monkeypatch):
        payload = {"kind": "run", "workload": "hpc-fft", "branches": 4000}
        request = parse_request(dict(payload))
        assert "specialize" not in request.payload
        monkeypatch.setenv("REPRO_SPECIALIZE", "on")
        request = parse_request(dict(payload))
        assert request.payload["specialize"] is True

    def test_non_boolean_field_rejected(self):
        with pytest.raises(ServiceError):
            parse_request(
                {"kind": "run", "workload": "hpc-fft", "specialize": "yes"}
            )


class TestCli:
    def test_run_specialize_prints_note(self, capsys):
        code = main(
            ["run", "--workload", "hpc-fft", "--system", "baseline-tage",
             "--branches", "4000", "--specialize"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "specialized: tage template" in out
        assert "2000 of 4000 branches" in out

    def test_run_without_flag_prints_no_note(self, capsys):
        code = main(
            ["run", "--workload", "hpc-fft", "--system", "baseline-tage",
             "--branches", "4000"]
        )
        assert code == 0
        assert "specialized:" not in capsys.readouterr().out

    def test_forced_abort_via_env_still_succeeds(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SPECIALIZE_FORCE_ABORT", "3000")
        code = main(
            ["run", "--workload", "hpc-fft", "--system", "baseline-tage",
             "--branches", "4000", "--specialize"]
        )
        assert code == 0
        assert "aborted on guard 'forced'" in capsys.readouterr().out
