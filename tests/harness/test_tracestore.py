"""Tests for the imported-trace store and its composition with the stack.

Runs entirely offline on the committed fixture traces — an autouse
fixture sets ``REPRO_OFFLINE`` so any attempted network fetch fails
loudly, which is also how the CI adapters job runs this module.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.errors import TraceError, WorkloadError
from repro.harness import runner, tracestore
from repro.harness.runner import run_matrix, run_single, trace_cache_path
from repro.harness.scale import Scale
from repro.harness.systems import SystemConfig, resolve_system
from repro.telemetry.manifest import build_manifest, stable_hash
from repro.pipeline.config import PipelineConfig
from repro.workloads.public import PUBLIC_CATEGORY, ImportedTraceSpec

FIXTURES = Path(__file__).resolve().parent.parent / "data" / "traces"
CHAMPSIM_FIXTURE = FIXTURES / "quicksort.champsim.gz"
BT9_FIXTURE = FIXTURES / "dijkstra.bt9"
MANIFEST = FIXTURES.parent.parent.parent / "traces" / "public-traces.json"

_SYSTEM = SystemConfig(name="baseline-tage", local_entries=None, scheme=None)


@pytest.fixture(autouse=True)
def _isolated_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
    monkeypatch.setenv("REPRO_OFFLINE", "1")
    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    monkeypatch.setattr(runner, "_TRACE_MEMO", type(runner._TRACE_MEMO)())


def _import_fixture(fixture=CHAMPSIM_FIXTURE, name="public-quicksort", **kw):
    return tracestore.import_trace(fixture, name=name, **kw)


class TestImport:
    def test_import_champsim_fixture(self):
        spec = _import_fixture()
        assert isinstance(spec, ImportedTraceSpec)
        assert spec.category == PUBLIC_CATEGORY
        assert spec.source_format == "champsim"
        assert spec.trace_records > 1000
        assert Path(spec.path).exists()

    def test_import_bt9_fixture(self):
        spec = _import_fixture(BT9_FIXTURE, name="public-dijkstra")
        assert spec.source_format == "bt9"
        assert spec.trace_records > 5000

    def test_reimport_is_idempotent(self):
        first = _import_fixture()
        second = _import_fixture()
        assert first == second

    def test_meta_sidecar_contents(self):
        spec = _import_fixture()
        meta = json.loads(
            (tracestore.store_dir() / "public-quicksort.meta.json").read_text()
        )
        assert meta["content_hash"] == spec.content_hash
        assert meta["records"] == spec.trace_records
        assert meta["source_format"] == "champsim"
        assert meta["compression"] == "gzip"
        assert 0.0 < meta["taken_rate"] < 1.0
        assert meta["static_sites"] > 0

    def test_list_imported(self):
        _import_fixture()
        _import_fixture(BT9_FIXTURE, name="public-dijkstra")
        names = [meta["name"] for meta in tracestore.list_imported()]
        assert names == ["public-dijkstra", "public-quicksort"]

    def test_missing_source_rejected(self):
        with pytest.raises(TraceError, match="not found"):
            tracestore.import_trace(FIXTURES / "nope.trace")


class TestResolve:
    def test_synthetic_name_still_resolves(self):
        spec = tracestore.resolve_workload("hpc-fft")
        assert spec.name == "hpc-fft"
        assert not isinstance(spec, ImportedTraceSpec)

    def test_imported_name_resolves(self):
        _import_fixture()
        spec = tracestore.resolve_workload("public-quicksort")
        assert isinstance(spec, ImportedTraceSpec)

    def test_unknown_name_mentions_both_sources(self):
        with pytest.raises(WorkloadError, match="trace store"):
            tracestore.resolve_workload("no-such-workload")


class TestHashing:
    def test_workload_hash_excludes_local_path(self, tmp_path):
        a = _import_fixture(store=tmp_path / "store-a")
        b = _import_fixture(store=tmp_path / "store-b")
        assert a.path != b.path
        pipeline = PipelineConfig()
        hash_a = build_manifest(a, _SYSTEM, 1000, pipeline).workload_hash
        hash_b = build_manifest(b, _SYSTEM, 1000, pipeline).workload_hash
        assert hash_a == hash_b

    def test_content_change_changes_hash(self, tmp_path):
        a = _import_fixture(store=tmp_path / "store-a")
        b = _import_fixture(
            BT9_FIXTURE, name="public-quicksort", store=tmp_path / "store-b"
        )
        pipeline = PipelineConfig()
        assert (
            build_manifest(a, _SYSTEM, 1000, pipeline).workload_hash
            != build_manifest(b, _SYSTEM, 1000, pipeline).workload_hash
        )

    def test_synthetic_hashes_unchanged_by_hook(self, tiny_spec):
        manifest = build_manifest(tiny_spec, _SYSTEM, 1000, PipelineConfig())
        historical = stable_hash({"spec": asdict(tiny_spec), "branches": 1000})
        assert manifest.workload_hash == historical


class TestRunning:
    def test_bit_identical_across_two_runs(self):
        spec = _import_fixture()
        first = run_single(spec, _SYSTEM, 5000, use_result_cache=False)
        runner._TRACE_MEMO.clear()
        second = run_single(spec, _SYSTEM, 5000, use_result_cache=False)
        assert (first.ipc, first.mpki, first.instructions, first.cycles,
                first.mispredictions) == (
            second.ipc, second.mpki, second.instructions, second.cycles,
            second.mispredictions,
        )

    def test_truncation_to_requested_length(self):
        spec = _import_fixture()
        records = runner.load_trace(spec, 100)
        assert len(records) == 100
        full = runner.load_trace(spec, spec.trace_records + 500)
        assert len(full) == spec.trace_records

    def test_trace_cache_path_contract(self):
        spec = _import_fixture()
        # Full-length runs may decode the store file columnar-ly...
        assert trace_cache_path(spec, spec.trace_records) == Path(spec.path)
        # ...truncating runs must not (the file holds too many records).
        assert trace_cache_path(spec, 100) is None

    def test_missing_store_file_is_actionable(self, tmp_path):
        spec = _import_fixture()
        Path(spec.path).unlink()
        runner._TRACE_MEMO.clear()
        with pytest.raises(TraceError, match="repro trace import"):
            runner.load_trace(spec, 1000)

    def test_result_cache_dedup_on_content_hash(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "results"))
        spec_a = _import_fixture(store=tmp_path / "store-a")
        run_single(spec_a, _SYSTEM, 1200)
        entries = sorted((tmp_path / "results").glob("*.json"))
        assert len(entries) == 1
        payload = json.loads(entries[0].read_text())
        payload["result"]["ipc"] = 123.456
        entries[0].write_text(json.dumps(payload))
        # Same content imported into a different store (different local
        # path) must hit the same cache entry.
        spec_b = _import_fixture(store=tmp_path / "store-b")
        runner._TRACE_MEMO.clear()
        cached = run_single(spec_b, _SYSTEM, 1200)
        assert cached.ipc == 123.456

    def test_parallel_shm_matrix_matches_serial(self):
        spec = _import_fixture()
        scale = Scale(name="t", branches_per_workload=1500,
                      workloads_per_category=1)
        systems = [_SYSTEM, SystemConfig(
            name="forward-walk-coalesce", scheme="forward", ports="32-4-2",
            coalesce=True,
        )]
        serial = run_matrix([spec], systems, scale, parallel=False,
                            use_result_cache=False)
        runner._TRACE_MEMO.clear()
        parallel = run_matrix([spec], systems, scale, parallel=True,
                              workers=2, use_result_cache=False)
        assert [(r.system, r.ipc, r.mpki) for r in serial] == [
            (r.system, r.ipc, r.mpki) for r in parallel
        ]

    def test_batch_sweep_on_imported_trace(self):
        spec = _import_fixture()
        systems = [resolve_system(s) for s in
                   ("bimodal:10", "bimodal:12", "gshare:12:8", "gshare:14:10")]
        scale = Scale(name="t", branches_per_workload=spec.trace_records,
                      workloads_per_category=1)
        exact = run_matrix([spec], systems, scale, parallel=False,
                           use_result_cache=False, batch=False)
        runner._TRACE_MEMO.clear()
        batched = run_matrix([spec], systems, scale, parallel=False,
                             use_result_cache=False, batch=True)
        assert [r.mpki for r in exact] == [r.mpki for r in batched]
        assert all(r.manifest["engine"] == "batch" for r in batched)


class TestFetch:
    def test_fetch_from_committed_manifest(self):
        spec = tracestore.fetch_trace("public-quicksort", MANIFEST)
        assert spec.source_format == "champsim"
        assert tracestore.resolve_workload("public-quicksort") == spec

    def test_unknown_manifest_name(self):
        with pytest.raises(WorkloadError, match="not in manifest"):
            tracestore.fetch_trace("public-nope", MANIFEST)

    def test_checksum_mismatch_rejected(self, tmp_path):
        manifest = {
            "version": 1,
            "traces": {
                "bad": {
                    "url": str(CHAMPSIM_FIXTURE),
                    "sha256": "0" * 64,
                    "format": "champsim",
                }
            },
        }
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(manifest))
        with pytest.raises(TraceError, match="checksum mismatch"):
            tracestore.fetch_trace("bad", path)

    def test_offline_guard_blocks_network(self, tmp_path):
        manifest = {
            "version": 1,
            "traces": {
                "remote": {
                    "url": "https://example.invalid/trace.gz",
                    "sha256": "0" * 64,
                }
            },
        }
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(manifest))
        with pytest.raises(WorkloadError, match="REPRO_OFFLINE"):
            tracestore.fetch_trace("remote", path)
