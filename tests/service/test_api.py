"""Validation tests for the service request model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, ReproError, ServiceError
from repro.service.api import MAX_BRANCHES, parse_request


@pytest.fixture(autouse=True)
def _no_disk(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)


class TestShapes:
    def test_run_request(self):
        request = parse_request(
            {"kind": "run", "workload": "hpc-fft", "branches": 2000}
        )
        assert request.kind == "run"
        assert len(request.jobs) == 1
        assert request.jobs[0].spec.name == "hpc-fft"
        assert request.jobs[0].n_branches == 2000
        assert request.payload["system"] == "forward-walk-coalesce"

    def test_compare_request_defaults_to_all_systems(self):
        request = parse_request({"kind": "compare", "workload": "hpc-fft"})
        assert len(request.jobs) >= 5
        assert len({job.system.name for job in request.jobs}) == len(request.jobs)

    def test_compare_with_explicit_systems(self):
        request = parse_request(
            {
                "kind": "compare",
                "workload": "hpc-fft",
                "systems": ["baseline-tage", "no-repair"],
            }
        )
        assert [job.system.name for job in request.jobs] == [
            "baseline-tage",
            "no-repair",
        ]

    def test_sweep_request_with_shard(self):
        full = parse_request(
            {"kind": "sweep", "branches": 1000, "systems": ["baseline-tage"]}
        )
        parts = [
            parse_request(
                {
                    "kind": "sweep",
                    "branches": 1000,
                    "systems": ["baseline-tage"],
                    "shard": f"{k}/3",
                }
            )
            for k in (1, 2, 3)
        ]
        recombined = [job for part in parts for job in part.jobs]
        assert recombined == list(full.jobs)

    def test_sampling_accepted(self):
        request = parse_request(
            {
                "kind": "run",
                "workload": "hpc-fft",
                "sampling": {"mode": "periodic", "interval": 500, "warmup": 800},
            }
        )
        sampling = request.jobs[0].sampling
        assert sampling is not None and sampling.interval == 500
        assert request.payload["sampling"]["mode"] == "periodic"

    def test_sampling_mode_off_means_exact(self):
        request = parse_request(
            {"kind": "run", "workload": "hpc-fft", "sampling": {"mode": "off"}}
        )
        assert request.jobs[0].sampling is None


class TestRejections:
    @pytest.mark.parametrize(
        "payload",
        [
            "not an object",
            {},
            {"kind": "explode"},
            {"kind": "run"},  # missing workload
            {"kind": "run", "workload": "hpc-fft", "shard": "1/2"},  # wrong kind
            {"kind": "run", "workload": "no-such-workload"},
            {"kind": "run", "workload": "hpc-fft", "system": "quantum"},
            {"kind": "run", "workload": "hpc-fft", "branches": 0},
            {"kind": "run", "workload": "hpc-fft", "branches": MAX_BRANCHES + 1},
            {"kind": "run", "workload": "hpc-fft", "branches": "many"},
            {"kind": "run", "workload": "hpc-fft", "branches": True},
            {"kind": "compare", "workload": "hpc-fft", "systems": []},
            {"kind": "compare", "workload": "hpc-fft", "systems": "baseline-tage"},
            {"kind": "sweep", "per_category": 0},
            {"kind": "sweep", "per_category": "all"},
            {"kind": "sweep", "shard": "1-2"},
            {"kind": "sweep", "shard": 12},
            {"kind": "run", "workload": "hpc-fft", "sampling": {"mode": "maybe"}},
            {"kind": "run", "workload": "hpc-fft", "sampling": {"interval": "x"}},
            {"kind": "run", "workload": "hpc-fft", "sampling": {"nope": 1}},
            {"kind": "run", "workload": "hpc-fft", "sampling": "on"},
        ],
    )
    def test_bad_payloads(self, payload):
        with pytest.raises(ReproError):
            parse_request(payload)

    def test_out_of_range_shard_is_config_error(self):
        with pytest.raises(ConfigError, match="shard"):
            parse_request({"kind": "sweep", "shard": "9/4"})

    def test_unknown_field_names_the_kind(self):
        with pytest.raises(ServiceError, match="run"):
            parse_request({"kind": "run", "workload": "hpc-fft", "turbo": True})


class TestDedupKeys:
    def test_identical_requests_share_a_key(self):
        a = parse_request({"kind": "run", "workload": "hpc-fft", "branches": 2000})
        b = parse_request({"kind": "run", "workload": "hpc-fft", "branches": 2000})
        assert a.key == b.key

    def test_branches_change_the_key(self):
        a = parse_request({"kind": "run", "workload": "hpc-fft", "branches": 2000})
        b = parse_request({"kind": "run", "workload": "hpc-fft", "branches": 2001})
        assert a.key != b.key

    def test_system_changes_the_key(self):
        a = parse_request({"kind": "run", "workload": "hpc-fft"})
        b = parse_request(
            {"kind": "run", "workload": "hpc-fft", "system": "baseline-tage"}
        )
        assert a.key != b.key

    def test_sampling_changes_the_key(self):
        a = parse_request({"kind": "run", "workload": "hpc-fft"})
        b = parse_request(
            {"kind": "run", "workload": "hpc-fft", "sampling": {"mode": "periodic"}}
        )
        assert a.key != b.key
