"""Tests for the admission-control gates (rate limiter, queue governor)."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service.limits import Decision, QueueGovernor, RateLimiter


class TestDecision:
    def test_retry_after_header_rounds_up(self):
        assert Decision(allowed=False, retry_after=0.2).retry_after_header == "1"
        assert Decision(allowed=False, retry_after=1.0).retry_after_header == "1"
        assert Decision(allowed=False, retry_after=1.01).retry_after_header == "2"


class TestRateLimiter:
    def test_burst_then_reject(self):
        limiter = RateLimiter(rate=1.0, burst=3)
        decisions = [limiter.check("alice", now=100.0) for _ in range(4)]
        assert [d.allowed for d in decisions] == [True, True, True, False]
        assert decisions[-1].retry_after > 0

    def test_refill_restores_tokens(self):
        limiter = RateLimiter(rate=2.0, burst=2)
        assert limiter.check("bob", now=0.0).allowed
        assert limiter.check("bob", now=0.0).allowed
        assert not limiter.check("bob", now=0.0).allowed
        # 0.5s at 2 tokens/s refills exactly the one token needed.
        assert limiter.check("bob", now=0.5).allowed

    def test_clients_are_independent(self):
        limiter = RateLimiter(rate=1.0, burst=1)
        assert limiter.check("a", now=0.0).allowed
        assert not limiter.check("a", now=0.0).allowed
        assert limiter.check("b", now=0.0).allowed

    def test_retry_after_matches_deficit(self):
        limiter = RateLimiter(rate=0.5, burst=1)
        limiter.check("c", now=0.0)
        decision = limiter.check("c", now=0.0)
        assert decision.retry_after == pytest.approx(2.0)

    def test_tokens_cap_at_burst(self):
        limiter = RateLimiter(rate=100.0, burst=2)
        limiter.check("d", now=0.0)
        # A long idle period must not bank more than `burst` tokens.
        assert limiter.check("d", now=1000.0).allowed
        assert limiter.check("d", now=1000.0).allowed
        assert not limiter.check("d", now=1000.0).allowed

    def test_client_table_is_bounded(self):
        limiter = RateLimiter(rate=1.0, burst=1, max_clients=4)
        for i in range(10):
            limiter.check(f"client-{i}", now=0.0)
        assert len(limiter._buckets) <= 4

    def test_invalid_parameters(self):
        with pytest.raises(ServiceError):
            RateLimiter(rate=0.0, burst=1)
        with pytest.raises(ServiceError):
            RateLimiter(rate=1.0, burst=0)


class TestQueueGovernor:
    def test_admits_under_limit(self):
        governor = QueueGovernor(limit=4)
        assert governor.check(3, mean_job_wall_s=1.0, workers=2).allowed

    def test_rejects_at_limit(self):
        governor = QueueGovernor(limit=4)
        decision = governor.check(4, mean_job_wall_s=6.0, workers=2)
        assert not decision.allowed
        assert decision.retry_after == pytest.approx(3.0)

    def test_retry_hint_floor_without_history(self):
        decision = QueueGovernor(limit=1).check(5, mean_job_wall_s=0.0, workers=8)
        assert not decision.allowed
        assert decision.retry_after == 1.0

    def test_invalid_limit(self):
        with pytest.raises(ServiceError):
            QueueGovernor(limit=0)
