"""Tests for the job store: lifecycle, dedup indexing, eviction, waits."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceError
from repro.service.api import parse_request
from repro.service.jobs import JobState, JobStore


@pytest.fixture(autouse=True)
def _no_disk(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)


def _request(branches: int = 2000):
    return parse_request(
        {"kind": "run", "workload": "hpc-fft", "branches": branches}
    )


class TestLifecycle:
    def test_submit_then_finish(self):
        store = JobStore()
        job, disposition = store.submit(_request(), "c1")
        assert disposition == "new" and job.state is JobState.QUEUED
        store.mark_running(job.job_id)
        assert store.require(job.job_id).state is JobState.RUNNING
        store.finish(job.job_id, JobState.DONE, results=[])
        done = store.require(job.job_id)
        assert done.state.terminal and done.finished_at is not None

    def test_finish_requires_terminal_state(self):
        store = JobStore()
        job, _ = store.submit(_request(), "c1")
        with pytest.raises(ServiceError):
            store.finish(job.job_id, JobState.RUNNING)

    def test_require_unknown_id(self):
        with pytest.raises(ServiceError, match="unknown job id"):
            JobStore().require("nope")

    def test_counts(self):
        store = JobStore()
        a, _ = store.submit(_request(2000), "c1")
        store.submit(_request(2001), "c1")
        store.mark_running(a.job_id)
        counts = store.counts()
        assert counts["queued"] == 1 and counts["running"] == 1


class TestDedup:
    def test_identical_submission_attaches_in_flight(self):
        store = JobStore()
        first, _ = store.submit(_request(), "c1")
        second, disposition = store.submit(_request(), "c2")
        assert disposition == "inflight" and second.job_id == first.job_id

    def test_identical_submission_reuses_completed(self):
        store = JobStore()
        first, _ = store.submit(_request(), "c1")
        store.mark_running(first.job_id)
        store.finish(first.job_id, JobState.DONE, results=[])
        second, disposition = store.submit(_request(), "c2")
        assert disposition == "completed" and second.job_id == first.job_id

    def test_failed_jobs_are_not_reused(self):
        store = JobStore()
        first, _ = store.submit(_request(), "c1")
        store.finish(first.job_id, JobState.FAILED, error="boom")
        second, disposition = store.submit(_request(), "c2")
        assert disposition == "new" and second.job_id != first.job_id

    def test_different_requests_do_not_collide(self):
        store = JobStore()
        a, _ = store.submit(_request(2000), "c1")
        b, disposition = store.submit(_request(2001), "c1")
        assert disposition == "new" and a.job_id != b.job_id


class TestCancel:
    def test_cancel_flags_job(self):
        store = JobStore()
        job, _ = store.submit(_request(), "c1")
        cancelled = store.request_cancel(job.job_id)
        assert cancelled.cancel_requested

    def test_cancel_terminal_job_is_conflict(self):
        store = JobStore()
        job, _ = store.submit(_request(), "c1")
        store.finish(job.job_id, JobState.DONE, results=[])
        with pytest.raises(ServiceError, match="cannot cancel"):
            store.request_cancel(job.job_id)


class TestEviction:
    def test_completed_jobs_evict_oldest_first(self):
        store = JobStore(max_completed=2)
        ids = []
        for i in range(3):
            job, _ = store.submit(_request(3000 + i), "c1")
            store.finish(job.job_id, JobState.DONE, results=[])
            ids.append(job.job_id)
        assert store.get(ids[0]) is None
        assert store.get(ids[1]) is not None and store.get(ids[2]) is not None

    def test_evicted_key_allows_resubmission(self):
        store = JobStore(max_completed=1)
        first, _ = store.submit(_request(2000), "c1")
        store.finish(first.job_id, JobState.DONE, results=[])
        filler, _ = store.submit(_request(2001), "c1")
        store.finish(filler.job_id, JobState.DONE, results=[])
        again, disposition = store.submit(_request(2000), "c1")
        assert disposition == "new" and again.job_id != first.job_id


class TestWait:
    def test_wait_returns_on_completion(self):
        store = JobStore()
        job, _ = store.submit(_request(), "c1")

        def finisher() -> None:
            store.finish(job.job_id, JobState.DONE, results=[])

        timer = threading.Timer(0.05, finisher)
        timer.start()
        try:
            waited = store.wait(job.job_id, timeout=5.0)
        finally:
            timer.cancel()
        assert waited.state is JobState.DONE

    def test_wait_times_out_with_current_state(self):
        store = JobStore()
        job, _ = store.submit(_request(), "c1")
        waited = store.wait(job.job_id, timeout=0.05)
        assert waited.state is JobState.QUEUED

    def test_wait_unknown_id(self):
        with pytest.raises(ServiceError):
            JobStore().wait("nope", timeout=0.01)
