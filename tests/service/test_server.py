"""End-to-end tests against a real in-process server on an ephemeral port.

Two server flavours:

* ``live`` — real simulations (tiny branch counts) with a private
  result-cache directory, for the submit/poll/fetch/dedup paths;
* ``gated`` — job execution replaced by an event-gated stub, so tests
  control exactly when "work" finishes (backpressure, cancel, drain).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service.jobs import JobState
from repro.service.server import ReproService, ServiceConfig

_RUN = {"kind": "run", "workload": "hpc-fft", "branches": 1500}


@pytest.fixture(autouse=True)
def _isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "results"))


def _post(base, payload, client="tests"):
    req = urllib.request.Request(
        f"{base}/v1/jobs",
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"X-Client-Id": client},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.load(resp), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode() or "{}"), dict(exc.headers)


def _get(base, path):
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=30) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode() or "{}")


def _delete(base, path):
    req = urllib.request.Request(f"{base}{path}", method="DELETE")
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode() or "{}")


@pytest.fixture
def live(tmp_path):
    service = ReproService(
        ServiceConfig(port=0, workers=2, state_dir=str(tmp_path / "state"))
    )
    service.start()
    host, port = service.address
    yield service, f"http://{host}:{port}"
    service.stop(drain=False, timeout=0.0)


@pytest.fixture
def gated(tmp_path, monkeypatch):
    """A server whose job execution blocks until the test releases it."""
    gate = threading.Event()

    def fake_execute(self: ReproService, job) -> None:
        assert gate.wait(timeout=30), "test never released the gate"
        self._finish(job.job_id, JobState.DONE, results=[])

    monkeypatch.setattr(ReproService, "_execute", fake_execute)
    service = ReproService(
        ServiceConfig(
            port=0,
            workers=1,
            queue_limit=1,
            state_dir=str(tmp_path / "state"),
            drain_timeout=5.0,
        )
    )
    service.start()
    host, port = service.address
    yield service, f"http://{host}:{port}", gate
    gate.set()
    service.stop(drain=False, timeout=0.0)


def _wait_state(base, job_id, *states, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body = _get(base, f"/v1/jobs/{job_id}?wait=2")
        if body["job"]["state"] in states:
            return body["job"]
    raise AssertionError(f"job {job_id} never reached {states}")


class TestSubmitPollFetch:
    def test_full_round_trip(self, live):
        _, base = live
        status, body, headers = _post(base, _RUN)
        assert status == 202 and not body["deduplicated"]
        job_id = body["job"]["id"]
        assert headers["Location"].endswith(job_id)

        job = _wait_state(base, job_id, "done")
        assert job["cache_hits"] == 0 and job["sim_runs"] == 1

        status, body = _get(base, f"/v1/jobs/{job_id}/result")
        assert status == 200
        rows = body["job"]["results"]
        assert len(rows) == 1
        assert rows[0]["system"] == "forward-walk-coalesce"
        assert rows[0]["ipc"] > 0 and rows[0]["cycles"] > 0

    def test_compare_returns_one_row_per_system(self, live):
        _, base = live
        payload = {
            "kind": "compare",
            "workload": "hpc-fft",
            "branches": 1200,
            "systems": ["baseline-tage", "no-repair"],
        }
        _, body, _ = _post(base, payload)
        job_id = body["job"]["id"]
        _wait_state(base, job_id, "done")
        _, body = _get(base, f"/v1/jobs/{job_id}/result")
        assert [r["system"] for r in body["job"]["results"]] == [
            "baseline-tage",
            "no-repair",
        ]

    def test_job_listing(self, live):
        _, base = live
        _, body, _ = _post(base, _RUN)
        status, listing = _get(base, "/v1/jobs")
        assert status == 200
        assert body["job"]["id"] in [job["id"] for job in listing["jobs"]]

    def test_validation_error_maps_to_400(self, live):
        _, base = live
        status, body, _ = _post(base, {"kind": "run", "workload": "no-such"})
        assert status == 400 and "unknown workload" in body["error"]

    def test_malformed_json_maps_to_400(self, live):
        _, base = live
        req = urllib.request.Request(
            f"{base}/v1/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400

    def test_unknown_job_and_route_are_404(self, live):
        _, base = live
        assert _get(base, "/v1/jobs/ffffffffffffffff")[0] == 404
        assert _get(base, "/v1/nothing")[0] == 404

    def test_result_of_unfinished_job_is_409(self, gated):
        _, base, _gate = gated
        _, body, _ = _post(base, _RUN)
        status, body = _get(base, f"/v1/jobs/{body['job']['id']}/result")
        assert status == 409 and body["state"] in ("queued", "running")

    def test_healthz(self, live):
        _, base = live
        status, body = _get(base, "/healthz")
        assert status == 200 and body["status"] == "ok"
        assert body["workers"] == 2

    def test_events_stream_ends_with_terminal_state(self, live):
        _, base = live
        _, body, _ = _post(base, _RUN)
        job_id = body["job"]["id"]
        _wait_state(base, job_id, "done")
        with urllib.request.urlopen(
            f"{base}/v1/jobs/{job_id}/events", timeout=30
        ) as resp:
            lines = [json.loads(line) for line in resp.read().splitlines()]
        assert lines and lines[-1]["state"] == "done"


class TestDedup:
    def test_concurrent_identical_submissions_run_once(self, live):
        service, base = live
        results = []
        barrier = threading.Barrier(8)

        def submit() -> None:
            barrier.wait()
            results.append(_post(base, _RUN, client=threading.current_thread().name))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        job_ids = {body["job"]["id"] for _, body, _ in results}
        assert len(job_ids) == 1, "identical submissions must share one job"
        deduplicated = [body["deduplicated"] for _, body, _ in results]
        assert deduplicated.count(False) == 1 and deduplicated.count(True) == 7

        job = _wait_state(base, job_ids.pop(), "done")
        assert job["sim_runs"] == 1  # exactly one simulation happened
        assert service.registry.counter("service.submitted").value == 1
        assert service.registry.counter("service.dedup_inflight").value >= 1

    def test_warm_resubmission_served_without_simulation(self, live):
        service, base = live
        _, body, _ = _post(base, _RUN)
        first_id = body["job"]["id"]
        _wait_state(base, first_id, "done")

        status, body, _ = _post(base, _RUN)
        assert status == 200 and body["deduplicated"]
        assert body["job"]["id"] == first_id
        assert service.registry.counter("service.dedup_completed").value == 1
        assert service.registry.counter("service.sim_runs").value == 1

    def test_result_cache_answers_after_store_eviction(self, live):
        service, base = live
        _, body, _ = _post(base, _RUN)
        job_id = body["job"]["id"]
        _wait_state(base, job_id, "done")
        # Drop the completed job from the in-memory store: the service
        # must fall back to the persistent result cache, not re-simulate.
        with service.store._lock:
            service.store._jobs.pop(job_id)
            service.store._completed_by_key.clear()
            service.store._completed_order.clear()
        _, body, _ = _post(base, _RUN)
        job = _wait_state(base, body["job"]["id"], "done")
        assert job["cache_hits"] == 1 and job["sim_runs"] == 0


class TestAdmission:
    def test_rate_limit_429_with_retry_after(self, tmp_path):
        service = ReproService(
            ServiceConfig(port=0, workers=1, rate=0.001, burst=2, state_dir=None)
        )
        service.start()
        try:
            host, port = service.address
            base = f"http://{host}:{port}"
            assert _post(base, _RUN, client="hog")[0] in (200, 202)
            assert _post(base, _RUN, client="hog")[0] in (200, 202)
            status, body, headers = _post(base, _RUN, client="hog")
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after"] > 0
            assert service.registry.counter("service.rate_limited").value == 1
            # Other clients have their own bucket.
            assert _post(base, _RUN, client="polite")[0] in (200, 202)
        finally:
            service.stop(drain=False, timeout=0.0)

    def test_queue_backpressure_429(self, gated):
        service, base, gate = gated
        _, body, _ = _post(base, _RUN)
        running_id = body["job"]["id"]
        _wait_state(base, running_id, "running")
        queued = dict(_RUN, branches=1501)
        assert _post(base, queued)[0] == 202  # depth 1 == limit boundary
        status, body, headers = _post(base, dict(_RUN, branches=1502))
        assert status == 429 and "queue full" in body["error"]
        assert int(headers["Retry-After"]) >= 1
        assert service.registry.counter("service.backpressure").value == 1
        gate.set()
        _wait_state(base, running_id, "done")


class TestCancel:
    def test_cancel_queued_job(self, gated):
        _, base, gate = gated
        _, body, _ = _post(base, _RUN)
        running_id = body["job"]["id"]
        _wait_state(base, running_id, "running")
        _, body, _ = _post(base, dict(_RUN, branches=1501))
        queued_id = body["job"]["id"]

        status, _ = _delete(base, f"/v1/jobs/{queued_id}")
        assert status == 200
        gate.set()
        job = _wait_state(base, queued_id, "cancelled")
        assert "cancelled" in job["error"]

    def test_cancel_finished_job_is_409(self, gated):
        _, base, gate = gated
        _, body, _ = _post(base, _RUN)
        gate.set()
        job_id = body["job"]["id"]
        _wait_state(base, job_id, "done")
        status, body = _delete(base, f"/v1/jobs/{job_id}")
        assert status == 409 and "cannot cancel" in body["error"]

    def test_cancel_unknown_job_is_404(self, live):
        _, base = live
        assert _delete(base, "/v1/jobs/ffffffffffffffff")[0] == 404


class TestMetricsEndpoint:
    def test_prometheus_exposition(self, live):
        _, base = live
        _, body, _ = _post(base, _RUN)
        _wait_state(base, body["job"]["id"], "done")
        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as resp:
            text = resp.read().decode()
        assert "# TYPE repro_service_submitted counter" in text
        assert "repro_service_submitted_total 1" in text
        assert "repro_service_queue_depth 0" in text
        assert "repro_service_job_wall_seconds_count 1" in text


class TestShutdown:
    def test_drain_finishes_inflight_work(self, live):
        service, base = live
        ids = []
        for i in range(4):
            _, body, _ = _post(base, dict(_RUN, branches=1500 + i))
            ids.append(body["job"]["id"])
        service.stop(drain=True, timeout=60.0)
        for job_id in ids:
            job = service.store.require(job_id)
            assert job.state is JobState.DONE
            assert job.results is not None

    def test_draining_server_refuses_submissions(self, live):
        service, base = live
        service._draining = True
        status, body, _ = _post(base, _RUN)
        assert status == 503 and "draining" in body["error"]

    def test_queue_persists_and_restores(self, gated, tmp_path, monkeypatch):
        service, base, gate = gated
        _, body, _ = _post(base, _RUN)
        running_id = body["job"]["id"]
        _wait_state(base, running_id, "running")
        _, body, _ = _post(base, dict(_RUN, branches=1501))
        queued_id = body["job"]["id"]

        # Drain times out (the gate is closed), the running job is
        # released late, and the still-queued job must hit disk.
        stopper = threading.Thread(
            target=service.stop, kwargs={"drain": True, "timeout": 0.2}
        )
        stopper.start()
        time.sleep(0.5)
        gate.set()
        stopper.join(timeout=30)
        assert not stopper.is_alive()
        state_file = tmp_path / "state" / "queue.json"
        assert state_file.exists()
        persisted = json.loads(state_file.read_text())
        assert [j["payload"]["branches"] for j in persisted["jobs"]] == [1501]

        restored = ReproService(
            ServiceConfig(port=0, workers=1, state_dir=str(tmp_path / "state"))
        )
        restored.start()
        try:
            assert not state_file.exists()
            jobs = restored.store.list_jobs()
            assert len(jobs) == 1
            host, port = restored.address
            job = _wait_state(
                f"http://{host}:{port}", jobs[0].job_id, "done"
            )
            assert job["request"]["branches"] == 1501
        finally:
            restored.stop(drain=False, timeout=0.0)
        assert queued_id  # silence unused warning; ids differ after restore
