"""Unit tests for the workload suite and categories."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.categories import (
    CATEGORIES,
    CATEGORY_COUNTS,
    base_params,
    jittered_params,
)
from repro.workloads.spec import WorkloadParams, WorkloadSpec
from repro.workloads.suite import (
    build_suite,
    get_workload,
    sample_suite,
    suite_by_category,
)


class TestCategories:
    def test_counts_match_table1(self):
        assert CATEGORY_COUNTS == {
            "server": 29,
            "hpc": 8,
            "ispec": 34,
            "fspec": 64,
            "mm": 15,
            "bp": 16,
            "personal": 36,
        }
        assert sum(CATEGORY_COUNTS.values()) == 202

    def test_base_params_exist_for_all(self):
        for category in CATEGORIES:
            params = base_params(category)
            assert isinstance(params, WorkloadParams)

    def test_unknown_category(self):
        with pytest.raises(WorkloadError):
            base_params("gaming")

    def test_jitter_is_deterministic(self):
        assert jittered_params("hpc", 42) == jittered_params("hpc", 42)
        assert jittered_params("hpc", 42) != jittered_params("hpc", 43)

    def test_category_characters(self):
        """Category params encode the paper's qualitative description."""
        server = base_params("server")
        hpc = base_params("hpc")
        fspec = base_params("fspec")
        # Server has the largest static footprint, HPC the smallest.
        footprint = lambda p: (
            p.n_loops + p.n_tight_loops + p.n_forward_loops
            + p.n_patterns + p.n_biased + p.n_global
        )
        assert footprint(server) > footprint(hpc)
        # FSPEC loops run much longer trips (rare exits).
        assert fspec.trip_max > server.trip_max


class TestSuite:
    def test_total_size(self):
        assert len(build_suite()) == 202

    def test_names_unique(self):
        names = [spec.name for spec in build_suite()]
        assert len(names) == len(set(names))

    def test_grouping(self):
        grouped = suite_by_category()
        for category, count in CATEGORY_COUNTS.items():
            assert len(grouped[category]) == count

    def test_get_workload(self):
        spec = get_workload("server-cloud-compression")
        assert spec.category == "server"
        with pytest.raises(WorkloadError):
            get_workload("nope")

    def test_paper_named_workloads_exist(self):
        for name in (
            "server-cloud-compression",
            "personal-tabletmark-email",
            "bp-sysmark-photoshop",
            "personal-eembc-dither",
        ):
            assert get_workload(name) is not None

    def test_eembc_dither_has_huge_footprint(self):
        dither = get_workload("personal-eembc-dither")
        typical = get_workload("personal-email")
        assert dither.params.n_loops > 2 * typical.params.n_loops

    def test_sample_suite(self):
        sample = sample_suite(2)
        assert len(sample) == 14
        categories = {spec.category for spec in sample}
        assert categories == set(CATEGORIES)
        with pytest.raises(WorkloadError):
            sample_suite(0)

    def test_seeds_unique(self):
        seeds = [spec.seed for spec in build_suite()]
        assert len(seeds) == len(set(seeds))


class TestSpecValidation:
    def test_trip_range(self):
        with pytest.raises(WorkloadError):
            WorkloadParams(trip_min=10, trip_max=5)

    def test_needs_a_loop(self):
        with pytest.raises(WorkloadError):
            WorkloadParams(n_loops=0, n_tight_loops=0, n_forward_loops=0)

    def test_name_required(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="", category="test", seed=1)

    def test_scaled_footprint_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadParams().scaled_footprint(0)
