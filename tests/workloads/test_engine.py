"""Unit tests for the trace-generation engine."""

from repro.trace.records import BranchKind
from repro.trace.stats import collect_stats
from repro.workloads.generators.engine import generate_trace
from repro.workloads.spec import WorkloadParams, WorkloadSpec


def spec(seed=11, **overrides):
    return WorkloadSpec(
        name="engine-test",
        category="test",
        seed=seed,
        params=WorkloadParams(**overrides),
    )


class TestGeneration:
    def test_exact_length(self):
        trace = generate_trace(spec(), 1000)
        assert len(trace) == 1000

    def test_empty_request(self):
        assert generate_trace(spec(), 0) == []

    def test_deterministic(self):
        assert generate_trace(spec(seed=3), 500) == generate_trace(spec(seed=3), 500)

    def test_seed_changes_trace(self):
        assert generate_trace(spec(seed=1), 500) != generate_trace(spec(seed=2), 500)

    def test_contains_conditional_and_unconditional(self):
        trace = generate_trace(spec(uncond_prob=0.2), 2000)
        kinds = {rec.kind for rec in trace}
        assert BranchKind.COND in kinds
        assert BranchKind.UNCOND in kinds

    def test_no_uncond_when_disabled(self):
        trace = generate_trace(spec(uncond_prob=0.0), 1000)
        assert all(rec.kind is BranchKind.COND for rec in trace)

    def test_gap_bounds_respected(self):
        trace = generate_trace(spec(gap_min=2, gap_max=5, tight_gap_max=3), 2000)
        assert all(0 <= rec.inst_gap <= 5 for rec in trace)

    def test_loads_emitted(self):
        trace = generate_trace(spec(load_prob=0.5), 2000)
        loads = [rec for rec in trace if rec.load_addr]
        assert len(loads) > 200
        assert any(rec.depends_on_load for rec in loads)

    def test_no_loads_when_disabled(self):
        trace = generate_trace(spec(load_prob=0.0), 500)
        assert all(rec.load_addr == 0 for rec in trace)


class TestStructure:
    def test_loop_sites_have_long_runs(self):
        trace = generate_trace(
            spec(
                n_loops=2,
                n_tight_loops=1,
                n_forward_loops=0,
                n_patterns=0,
                n_biased=0,
                n_global=0,
                trip_min=10,
                trip_max=12,
                trip_entropy=0.0,
                loop_region_weight=1.0,
                uncond_prob=0.0,
            ),
            3000,
        )
        stats = collect_stats(trace)
        assert stats.mean_run_length() > 5.0

    def test_footprint_scales_static_sites(self):
        small = collect_stats(generate_trace(spec(seed=5), 4000)).static_sites
        big_params = WorkloadParams().scaled_footprint(3.0)
        big_spec = WorkloadSpec(name="big", category="test", seed=5, params=big_params)
        big = collect_stats(generate_trace(big_spec, 4000)).static_sites
        assert big > small

    def test_forward_loops_dominant_not_taken(self):
        trace = generate_trace(
            spec(
                n_loops=0,
                n_tight_loops=0,
                n_forward_loops=3,
                n_patterns=1,
                n_biased=0,
                n_global=0,
                trip_min=6,
                trip_max=8,
                loop_region_weight=1.0,
                uncond_prob=0.0,
            ),
            2000,
        )
        stats = collect_stats(trace)
        # Some hot site shows the forward-loop signature: long runs of
        # a dominantly not-taken direction (the bodies are taken-biased
        # noise, so the *overall* rate stays high).
        forward_like = [
            p
            for p in stats.profiles.values()
            if p.occurrences > 50 and p.bias < 0.4 and p.run_length > 3
        ]
        assert forward_like

    def test_tight_loops_have_small_gaps(self):
        trace = generate_trace(
            spec(
                n_loops=0,
                n_tight_loops=2,
                n_forward_loops=0,
                n_patterns=1,
                n_biased=0,
                n_global=0,
                gap_min=6,
                gap_max=10,
                tight_gap_max=2,
                loop_region_weight=1.0,
                uncond_prob=0.0,
            ),
            2000,
        )
        stats = collect_stats(trace)
        # The tight-loop sites contribute many small gaps.
        small_gaps = sum(1 for rec in trace if rec.inst_gap <= 2)
        assert small_gaps > len(trace) * 0.3
        del stats


class TestTargetSemantics:
    """Taken-target direction is a property of the branch *site*.

    Inner-most-loop counters (IMLI) depend on real code's property that
    only loop back-edges jump backward — body conditionals and
    if-then-else sites jump forward.
    """

    def _trace(self):
        return generate_trace(
            spec(
                n_loops=2,
                n_tight_loops=2,
                n_forward_loops=1,
                n_patterns=2,
                n_biased=2,
                n_global=0,
                loop_region_weight=0.8,
                uncond_prob=0.0,
            ),
            2500,
        )

    def test_target_direction_is_per_site(self):
        directions: dict[int, bool] = {}
        for rec in self._trace():
            backward = rec.target < rec.pc
            assert directions.setdefault(rec.pc, backward) == backward

    def test_backward_sites_exist_and_look_like_loops(self):
        trace = self._trace()
        stats = collect_stats(trace)
        backward_pcs = {rec.pc for rec in trace if rec.target < rec.pc}
        assert backward_pcs
        for pc in backward_pcs:
            profile = stats.profiles[pc]
            # Back-edges are dominantly taken with loop-like runs.
            assert profile.bias > 0.5
            assert profile.run_length > 2

    def test_most_sites_jump_forward(self):
        trace = self._trace()
        forward_pcs = {rec.pc for rec in trace if rec.target > rec.pc}
        backward_pcs = {rec.pc for rec in trace if rec.target < rec.pc}
        assert len(forward_pcs) > len(backward_pcs)
