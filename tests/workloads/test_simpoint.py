"""Unit tests for Simpoint-like phase selection."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.simpoint import interval_vectors, select_phases
from tests.conftest import loop_trace, make_branch


def two_phase_trace():
    """A trace with two clearly distinct phases."""
    phase_a = loop_trace(pc=0x1000, trip=4, executions=100)
    phase_b = loop_trace(pc=0x9000, trip=4, executions=100)
    return phase_a + phase_b


class TestIntervalVectors:
    def test_shapes(self):
        trace = two_phase_trace()
        matrix, bounds = interval_vectors(trace, interval_size=100)
        assert matrix.shape[0] == len(bounds)
        assert matrix.shape[0] == (len(trace) + 99) // 100

    def test_rows_normalised(self):
        matrix, _ = interval_vectors(two_phase_trace(), interval_size=100)
        sums = matrix.sum(axis=1)
        assert all(abs(s - 1.0) < 1e-9 for s in sums)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            interval_vectors([], 100)
        with pytest.raises(WorkloadError):
            interval_vectors([make_branch()], 0)


class TestSelectPhases:
    def test_two_phases_found(self):
        phases = select_phases(two_phase_trace(), interval_size=100, max_phases=2)
        assert len(phases) == 2
        # Each phase's representative interval comes from its half.
        starts = sorted(p.start for p in phases)
        trace_len = len(two_phase_trace())
        assert starts[0] < trace_len // 2 <= starts[1]

    def test_weights_sum_to_one(self):
        phases = select_phases(two_phase_trace(), interval_size=100, max_phases=3)
        assert abs(sum(p.weight for p in phases) - 1.0) < 1e-9

    def test_single_interval_trace(self):
        trace = loop_trace(pc=0x1000, trip=4, executions=5)
        phases = select_phases(trace, interval_size=10_000)
        assert len(phases) == 1
        assert phases[0].weight == 1.0

    def test_uniform_trace_phases_cover(self):
        trace = loop_trace(pc=0x1000, trip=4, executions=200)
        phases = select_phases(trace, interval_size=100, max_phases=4)
        assert 1 <= len(phases) <= 4


class TestTailIntervals:
    """Traces whose length is not a multiple of the interval size."""

    def test_tail_interval_included(self):
        trace = two_phase_trace()[:937]  # ragged final interval
        matrix, bounds = interval_vectors(trace, interval_size=100)
        assert len(bounds) == 10
        assert bounds[-1] == (900, 937)
        assert matrix.shape[0] == 10

    def test_bounds_contiguous_and_covering(self):
        trace = two_phase_trace()[:777]
        _, bounds = interval_vectors(trace, interval_size=128)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == len(trace)
        for (_, prev_end), (start, _) in zip(bounds, bounds[1:]):
            assert start == prev_end

    def test_tail_row_normalised(self):
        trace = two_phase_trace()[:937]
        matrix, _ = interval_vectors(trace, interval_size=100)
        assert abs(matrix[-1].sum() - 1.0) < 1e-9

    def test_tail_phase_weights_still_sum_to_one(self):
        trace = two_phase_trace()[:937]
        phases = select_phases(trace, interval_size=100, max_phases=4)
        assert abs(sum(p.weight for p in phases) - 1.0) < 1e-9
        for phase in phases:
            assert 0 <= phase.start < phase.end <= len(trace)


class TestDegenerateTraces:
    def test_single_pc_trace(self):
        trace = [make_branch(pc=0x5000, taken=True) for _ in range(250)]
        matrix, bounds = interval_vectors(trace, interval_size=100)
        assert matrix.shape == (3, 1)
        assert all(abs(row.sum() - 1.0) < 1e-9 for row in matrix)
        phases = select_phases(trace, interval_size=100, max_phases=4)
        assert abs(sum(p.weight for p in phases) - 1.0) < 1e-9

    def test_trace_shorter_than_interval(self):
        trace = [make_branch(pc=0x5000)] * 7
        matrix, bounds = interval_vectors(trace, interval_size=100)
        assert matrix.shape[0] == 1
        assert bounds == [(0, 7)]

    def test_empty_trace_raises(self):
        with pytest.raises(WorkloadError):
            interval_vectors([], 64)
        with pytest.raises(WorkloadError):
            select_phases([], interval_size=64)
