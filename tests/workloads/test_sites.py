"""Unit tests for branch-site behaviour models."""

import random

import pytest

from repro.errors import WorkloadError
from repro.workloads.generators.sites import (
    BiasedSite,
    GlobalCorrelatedSite,
    LoopSite,
    PatternSite,
)


class TestLoopSite:
    def test_draw_trip_from_choices(self):
        site = LoopSite(pc=0x10, trips=(5, 6, 7))
        rng = random.Random(1)
        draws = {site.draw_trip(rng) for _ in range(100)}
        assert draws <= {5, 6, 7}

    def test_weighted_draws_respect_distribution(self):
        site = LoopSite(pc=0x10, trips=(5, 6), trip_weights=(0.95, 0.05))
        rng = random.Random(2)
        draws = [site.draw_trip(rng) for _ in range(500)]
        assert draws.count(5) > draws.count(6) * 5

    def test_validation(self):
        with pytest.raises(WorkloadError):
            LoopSite(pc=0x10, trips=())
        with pytest.raises(WorkloadError):
            LoopSite(pc=0x10, trips=(0,))
        with pytest.raises(WorkloadError):
            LoopSite(pc=0x10, trips=(3, 4), trip_weights=(1.0,))

    def test_next_outcome_not_supported(self):
        site = LoopSite(pc=0x10, trips=(5,))
        with pytest.raises(WorkloadError):
            site.next_outcome(random.Random(0), 0)


class TestPatternSite:
    def test_cycles_pattern(self):
        site = PatternSite(pc=0x10, pattern=(True, True, False), noise=0.0)
        rng = random.Random(0)
        outcomes = [site.next_outcome(rng, 0) for _ in range(6)]
        assert outcomes == [True, True, False, True, True, False]

    def test_noise_flips_sometimes(self):
        site = PatternSite(pc=0x10, pattern=(True,), noise=0.5)
        rng = random.Random(3)
        outcomes = [site.next_outcome(rng, 0) for _ in range(200)]
        assert 0.2 < outcomes.count(False) / len(outcomes) < 0.8

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PatternSite(pc=0x10, pattern=())
        with pytest.raises(WorkloadError):
            PatternSite(pc=0x10, pattern=(True,), noise=1.5)


class TestBiasedSite:
    def test_bias_respected(self):
        site = BiasedSite(pc=0x10, p_taken=0.9)
        rng = random.Random(4)
        outcomes = [site.next_outcome(rng, 0) for _ in range(1000)]
        assert 0.85 < sum(outcomes) / len(outcomes) < 0.95

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BiasedSite(pc=0x10, p_taken=1.5)


class TestGlobalCorrelatedSite:
    def test_outcome_is_history_parity(self):
        site = GlobalCorrelatedSite(pc=0x10, history_bits=3, noise=0.0)
        rng = random.Random(0)
        assert site.next_outcome(rng, 0b101) is False  # even parity in 3 LSBs? 101 -> 2 ones
        assert site.next_outcome(rng, 0b111) is True
        assert site.next_outcome(rng, 0b001) is True

    def test_invert(self):
        rng = random.Random(0)
        plain = GlobalCorrelatedSite(pc=0x10, history_bits=3, invert=False)
        inverted = GlobalCorrelatedSite(pc=0x10, history_bits=3, invert=True)
        assert plain.next_outcome(rng, 0b111) != inverted.next_outcome(rng, 0b111)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            GlobalCorrelatedSite(pc=0x10, history_bits=0)
