"""Unit tests for trace statistics."""

from repro.trace.records import BranchKind
from repro.trace.stats import PcProfile, collect_stats
from tests.conftest import loop_trace, make_branch


class TestPcProfile:
    def test_bias(self):
        profile = PcProfile(pc=0x10)
        for taken in (True, True, True, False):
            profile.observe(taken)
        assert profile.occurrences == 4
        assert profile.bias == 0.75

    def test_transitions_and_run_length(self):
        profile = PcProfile(pc=0x10)
        # TTTN TTTN -> transitions at T->N, N->T, T->N = 3
        for taken in (True, True, True, False, True, True, True, False):
            profile.observe(taken)
        assert profile.transitions == 3
        assert profile.run_length == 8 / 4

    def test_no_occurrences(self):
        profile = PcProfile(pc=0x10)
        assert profile.bias == 0.0
        assert profile.run_length == 0.0

    def test_constant_direction_run_length(self):
        profile = PcProfile(pc=0x10)
        for _ in range(7):
            profile.observe(True)
        assert profile.run_length == 7.0


class TestCollectStats:
    def test_empty(self):
        stats = collect_stats([])
        assert stats.total_branches == 0
        assert stats.branch_density == 0.0
        assert stats.taken_rate == 0.0

    def test_counts(self):
        recs = loop_trace(pc=0x100, trip=3, executions=2)
        stats = collect_stats(recs)
        assert stats.total_branches == 8
        assert stats.conditional_branches == 8
        assert stats.taken_branches == 6
        assert stats.taken_rate == 0.75
        assert stats.static_sites == 1

    def test_instruction_accounting(self):
        recs = [make_branch(inst_gap=4), make_branch(inst_gap=0)]
        stats = collect_stats(recs)
        assert stats.total_instructions == 6
        assert stats.branch_density == 2 / 6

    def test_non_cond_not_profiled(self):
        recs = [
            make_branch(pc=0x10, kind=BranchKind.COND),
            make_branch(pc=0x20, kind=BranchKind.UNCOND),
        ]
        stats = collect_stats(recs)
        assert stats.static_sites == 1
        assert stats.kind_counts[BranchKind.UNCOND] == 1

    def test_mean_run_length_weighted(self):
        recs = loop_trace(pc=0x100, trip=9, executions=3)
        stats = collect_stats(recs)
        # Runs of 9 taken then 1 not-taken: mean run length ~ 30/6.
        assert stats.mean_run_length() > 3.0

    def test_top_sites(self):
        recs = loop_trace(pc=0x100, trip=5, executions=4) + loop_trace(
            pc=0x200, trip=2, executions=1
        )
        stats = collect_stats(recs)
        top = stats.top_sites(1)
        assert len(top) == 1
        assert top[0].pc == 0x100
