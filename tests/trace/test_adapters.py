"""Unit tests for the external trace-format adapters."""

import gzip
import lzma
import struct

import pytest

from repro.errors import TraceFormatError
from repro.trace.adapters import (
    ADAPTER_VERSION,
    Bt9Adapter,
    ChampSimAdapter,
    RptrAdapter,
    convert_bytes,
    decompress_payload,
    detect_format,
    get_adapter,
    registered_adapters,
    write_bt9,
    write_champsim,
)
from repro.trace.io import dumps_trace
from repro.trace.records import BranchKind, BranchRecord


def sample_records():
    """A consistent stream covering every kind, loads, and re-visits."""
    return [
        BranchRecord(pc=0x400100, target=0x400200, taken=True,
                     kind=BranchKind.COND, inst_gap=3,
                     load_addr=0x8000, depends_on_load=True),
        BranchRecord(pc=0x400204, target=0x400100, taken=False,
                     kind=BranchKind.COND, inst_gap=2),
        BranchRecord(pc=0x400208, target=0x400300, taken=True,
                     kind=BranchKind.CALL, inst_gap=0),
        BranchRecord(pc=0x400304, target=0x40020C, taken=True,
                     kind=BranchKind.RET, inst_gap=1),
        BranchRecord(pc=0x400210, target=0x400400, taken=True,
                     kind=BranchKind.UNCOND, inst_gap=2),
        BranchRecord(pc=0x400404, target=0x400500, taken=True,
                     kind=BranchKind.INDIRECT, inst_gap=1),
        BranchRecord(pc=0x400100, target=0x400200, taken=True,
                     kind=BranchKind.COND, inst_gap=2),
    ]


def expected_targets(records):
    """Adapter normalisation: not-taken targets come from taken sightings."""
    taken = {}
    for rec in records:
        if rec.taken and rec.target:
            taken.setdefault(rec.pc, rec.target)
    return [
        rec.target if rec.taken else taken.get(rec.pc, 0) for rec in records
    ]


class TestRegistry:
    def test_detection_order(self):
        assert [a.format for a in registered_adapters()] == [
            "rptr", "bt9", "champsim",
        ]

    def test_unknown_format_rejected(self):
        with pytest.raises(TraceFormatError, match="unknown trace format"):
            get_adapter("vpc")

    def test_undetectable_payload_rejected(self):
        with pytest.raises(TraceFormatError, match="unrecognised"):
            detect_format(b"\x01\x02\x03 not a trace")

    def test_adapter_version_exported(self):
        assert ADAPTER_VERSION >= 1


class TestCompression:
    def test_gzip_transparent(self):
        payload = write_champsim(sample_records())
        result = convert_bytes(gzip.compress(payload))
        assert result.compression == "gzip"
        assert result.format == "champsim"

    def test_xz_transparent(self):
        payload = write_bt9(sample_records()).encode()
        result = convert_bytes(lzma.compress(payload))
        assert result.compression == "xz"
        assert result.format == "bt9"

    def test_plain_passthrough(self):
        assert decompress_payload(b"BT9_etc") == (b"BT9_etc", None)

    def test_corrupt_gzip_is_format_error(self):
        broken = gzip.compress(b"x" * 100)[:-6]
        with pytest.raises(TraceFormatError, match="gzip"):
            decompress_payload(broken)


class TestChampSim:
    def test_round_trip(self):
        records = sample_records()
        out = convert_bytes(write_champsim(records))
        assert out.format == "champsim"
        assert [r.pc for r in out.records] == [r.pc for r in records]
        assert [r.taken for r in out.records] == [r.taken for r in records]
        assert [r.kind for r in out.records] == [r.kind for r in records]
        assert [r.inst_gap for r in out.records] == [r.inst_gap for r in records]
        assert [r.target for r in out.records] == expected_targets(records)

    def test_load_dependence_recovered(self):
        out = convert_bytes(write_champsim(sample_records()))
        first = out.records[0]
        assert first.load_addr == 0x8000
        assert first.depends_on_load

    def test_partial_record_rejected_with_offset(self):
        payload = write_champsim(sample_records()) + b"\x00" * 10
        with pytest.raises(TraceFormatError, match="whole number") as exc:
            ChampSimAdapter().read(payload)
        assert exc.value.offset == len(payload) - 10

    def test_non_boolean_flags_rejected(self):
        payload = bytearray(write_champsim(sample_records()))
        payload[8] = 7  # is_branch byte of record 0
        with pytest.raises(TraceFormatError, match="non-boolean") as exc:
            ChampSimAdapter().read(bytes(payload))
        assert exc.value.offset == 0

    def test_sniff_rejects_misaligned_and_text(self):
        adapter = ChampSimAdapter()
        assert not adapter.sniff(b"")
        assert not adapter.sniff(b"\x00" * 63)
        assert adapter.sniff(b"\x00" * 64)
        assert not adapter.sniff(b"BT9_SPA_TRACE_FORMAT" + b" " * 44)

    def test_uncond_always_taken_normalised(self):
        # A tracer may mark a jump not-taken; RPTR normalises it.
        record = struct.Struct("<Q8B6Q").pack(
            0x1000, 1, 0, 26, 0, 26, 0, 0, 0, 0, 0, 0, 0, 0, 0
        )
        out = ChampSimAdapter().read(record)
        assert out[0].kind is BranchKind.UNCOND
        assert out[0].taken


class TestBt9:
    def test_round_trip(self):
        records = sample_records()
        text = write_bt9(records)
        out = convert_bytes(text.encode())
        assert out.format == "bt9"
        assert [r.pc for r in out.records] == [r.pc for r in records]
        assert [r.taken for r in out.records] == [r.taken for r in records]
        assert [r.kind for r in out.records] == [r.kind for r in records]
        assert [r.inst_gap for r in out.records] == [r.inst_gap for r in records]
        assert [r.target for r in out.records] == expected_targets(records)

    def test_missing_magic_rejected(self):
        with pytest.raises(TraceFormatError, match="header") as exc:
            Bt9Adapter().read(b"NODE 0 0x0 - 0x0 0\n")
        assert exc.value.unit == "line"

    def test_sequence_discontinuity_rejected_with_line(self):
        text = write_bt9(sample_records())
        lines = text.splitlines()
        seq_start = lines.index("BT9_EDGE_SEQUENCE") + 1
        # Swap two sequence entries to break dest->src continuity.
        lines[seq_start], lines[seq_start + 1] = (
            lines[seq_start + 1], lines[seq_start],
        )
        with pytest.raises(TraceFormatError, match="discontinuity") as exc:
            Bt9Adapter().read("\n".join(lines).encode())
        assert exc.value.unit == "line"
        assert exc.value.offset is not None

    def test_unknown_edge_rejected(self):
        text = write_bt9(sample_records()) + "9999\n"
        with pytest.raises(TraceFormatError, match="unknown edge"):
            Bt9Adapter().read(text.encode())

    def test_not_taken_on_unconditional_rejected(self):
        text = (
            "BT9_SPA_TRACE_FORMAT version: 0\n"
            "BT9_NODES\n"
            "NODE 0 0x0 - 0x0 0\n"
            'NODE 1 0x1000 - 0x0 4 "JMP+DIRECT+UCD"\n'
            "NODE 2 0x0 - 0x0 0\n"
            "BT9_EDGES\n"
            "EDGE 0 0 1 T 0x1000 - 0 1\n"
            "EDGE 1 1 2 N - - 0 1\n"
            "BT9_EDGE_SEQUENCE\n0\n1\n"
        )
        with pytest.raises(TraceFormatError, match="non-conditional") as exc:
            Bt9Adapter().read(text.encode())
        assert exc.value.unit == "line"

    def test_malformed_direction_rejected(self):
        text = (
            "BT9_SPA_TRACE_FORMAT version: 0\n"
            "BT9_NODES\nNODE 0 0x0 - 0x0 0\n"
            "BT9_EDGES\nEDGE 0 0 0 X - - 0 1\n"
            "BT9_EDGE_SEQUENCE\n"
        )
        with pytest.raises(TraceFormatError, match="T or N"):
            Bt9Adapter().read(text.encode())

    def test_conflicting_kinds_unwritable(self):
        records = [
            BranchRecord(pc=0x100, target=0x200, taken=True,
                         kind=BranchKind.COND),
            BranchRecord(pc=0x100, target=0x200, taken=True,
                         kind=BranchKind.CALL),
        ]
        with pytest.raises(TraceFormatError, match="conflicting"):
            write_bt9(records)

    def test_gap_clamped_to_u16(self):
        records = [
            BranchRecord(pc=0x100, target=0x200, taken=True, inst_gap=0),
            BranchRecord(pc=0x104, target=0x200, taken=True, inst_gap=200_000),
        ]
        out = Bt9Adapter().read(write_bt9(records).encode())
        assert out[1].inst_gap == 0xFFFF


class TestRptrPassthrough:
    def test_detected_and_read(self):
        records = sample_records()
        payload = dumps_trace(records)
        assert detect_format(payload) == "rptr"
        out = convert_bytes(payload)
        assert out.records == records

    def test_compressed_rptr(self):
        records = sample_records()
        out = convert_bytes(gzip.compress(dumps_trace(records)))
        assert out.format == "rptr"
        assert out.compression == "gzip"
        assert out.records == records

    def test_sniff(self):
        assert RptrAdapter().sniff(b"RPTR\x01\x00")
        assert not RptrAdapter().sniff(b"NOPE")
