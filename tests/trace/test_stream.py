"""Unit tests for TraceStream."""

import pytest

from repro.errors import TraceError
from repro.trace.stream import TraceStream
from tests.conftest import make_branch


def records(n):
    return [make_branch(pc=0x1000 + 16 * i) for i in range(n)]


class TestTraceStream:
    def test_sequential_delivery(self):
        recs = records(5)
        stream = TraceStream(recs)
        delivered = [stream.next_record() for _ in range(5)]
        assert delivered == recs
        assert stream.exhausted

    def test_len_and_position(self):
        stream = TraceStream(records(3))
        assert len(stream) == 3
        assert stream.position == 0
        stream.next_record()
        assert stream.position == 1

    def test_peek_does_not_consume(self):
        recs = records(2)
        stream = TraceStream(recs)
        assert stream.peek() == recs[0]
        assert stream.position == 0
        stream.next_record()
        stream.next_record()
        assert stream.peek() is None

    def test_exhausted_raises(self):
        stream = TraceStream(records(1))
        stream.next_record()
        with pytest.raises(TraceError):
            stream.next_record()

    def test_recent_window_bounded(self):
        recs = records(10)
        stream = TraceStream(recs, window=4)
        for _ in range(10):
            stream.next_record()
        recent = stream.recent(10)
        assert recent == recs[-4:]

    def test_recent_order_oldest_first(self):
        recs = records(6)
        stream = TraceStream(recs, window=8)
        for _ in range(6):
            stream.next_record()
        assert stream.recent(3) == recs[-3:]

    def test_recent_zero_and_negative(self):
        stream = TraceStream(records(3))
        stream.next_record()
        assert stream.recent(0) == []
        assert stream.recent(-1) == []

    def test_restart(self):
        recs = records(4)
        stream = TraceStream(recs)
        stream.next_record()
        stream.next_record()
        stream.restart()
        assert stream.position == 0
        assert stream.recent(5) == []
        assert stream.next_record() == recs[0]

    def test_invalid_window_rejected(self):
        with pytest.raises(TraceError):
            TraceStream(records(1), window=0)

    def test_iteration_non_destructive(self):
        recs = records(3)
        stream = TraceStream(recs)
        assert list(stream) == recs
        assert stream.position == 0
