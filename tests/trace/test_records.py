"""Unit tests for branch trace records."""

import pytest

from repro.errors import TraceError
from repro.trace.records import BranchKind, BranchRecord
from tests.conftest import make_branch


class TestBranchKind:
    def test_only_cond_is_conditional(self):
        assert BranchKind.COND.is_conditional
        for kind in (BranchKind.UNCOND, BranchKind.CALL, BranchKind.RET, BranchKind.INDIRECT):
            assert not kind.is_conditional

    def test_kinds_are_stable_ints(self):
        # The serialized format depends on these values.
        assert int(BranchKind.COND) == 0
        assert int(BranchKind.UNCOND) == 1
        assert int(BranchKind.CALL) == 2
        assert int(BranchKind.RET) == 3
        assert int(BranchKind.INDIRECT) == 4


class TestBranchRecord:
    def test_basic_fields(self):
        rec = BranchRecord(pc=0x400000, target=0x400040, taken=True, inst_gap=5)
        assert rec.pc == 0x400000
        assert rec.taken
        assert rec.group_size == 6

    def test_group_size_counts_the_branch_itself(self):
        assert make_branch(inst_gap=0).group_size == 1
        assert make_branch(inst_gap=9).group_size == 10

    def test_negative_pc_rejected(self):
        with pytest.raises(TraceError):
            BranchRecord(pc=-4, target=0, taken=True)

    def test_negative_gap_rejected(self):
        with pytest.raises(TraceError):
            BranchRecord(pc=4, target=0, taken=True, inst_gap=-1)

    def test_unconditional_must_be_taken(self):
        with pytest.raises(TraceError):
            BranchRecord(pc=4, target=8, taken=False, kind=BranchKind.UNCOND)

    def test_with_direction_flips_only_direction(self):
        rec = make_branch(pc=0x2000, taken=True, inst_gap=7)
        flipped = rec.with_direction(False)
        assert not flipped.taken
        assert flipped.pc == rec.pc
        assert flipped.inst_gap == rec.inst_gap
        assert flipped.kind == rec.kind

    def test_records_are_immutable(self):
        rec = make_branch()
        with pytest.raises(AttributeError):
            rec.taken = False  # type: ignore[misc]

    def test_records_hash_and_compare(self):
        a = make_branch(pc=0x1000)
        b = make_branch(pc=0x1000)
        assert a == b
        assert hash(a) == hash(b)
