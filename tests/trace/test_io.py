"""Unit tests for trace serialization."""

import pytest

from repro.errors import TraceError, TraceFormatError
from repro.trace.io import dumps_trace, loads_trace, read_trace, write_trace
from repro.trace.records import BranchKind, BranchRecord
from tests.conftest import make_branch


def sample_records():
    return [
        make_branch(pc=0x400000, taken=True, inst_gap=3),
        make_branch(pc=0x400010, taken=False, inst_gap=0),
        BranchRecord(
            pc=0x400020,
            target=0x400400,
            taken=True,
            kind=BranchKind.CALL,
            inst_gap=7,
            load_addr=0x10000040,
            depends_on_load=False,
        ),
        make_branch(pc=0x400030, taken=True, load_addr=0xDEAD00, depends_on_load=True),
    ]


class TestRoundTrip:
    def test_bytes_round_trip(self):
        recs = sample_records()
        assert loads_trace(dumps_trace(recs)) == recs

    def test_empty_trace(self):
        assert loads_trace(dumps_trace([])) == []

    def test_file_round_trip(self, tmp_path):
        recs = sample_records()
        path = tmp_path / "trace.bin"
        write_trace(path, recs)
        assert read_trace(path) == recs

    def test_large_pc_values(self):
        rec = BranchRecord(pc=2**63 - 8, target=2**63 - 4, taken=True)
        assert loads_trace(dumps_trace([rec])) == [rec]

    def test_all_kinds_round_trip(self):
        recs = [
            BranchRecord(pc=16 * (i + 1), target=8, taken=True, kind=kind)
            for i, kind in enumerate(BranchKind)
        ]
        assert loads_trace(dumps_trace(recs)) == recs


class TestMalformedInput:
    def test_truncated_header(self):
        with pytest.raises(TraceError, match="truncated"):
            loads_trace(b"RP")

    def test_bad_magic(self):
        data = bytearray(dumps_trace(sample_records()))
        data[:4] = b"NOPE"
        with pytest.raises(TraceError, match="magic"):
            loads_trace(bytes(data))

    def test_bad_version(self):
        data = bytearray(dumps_trace([]))
        data[4] = 0xFF
        with pytest.raises(TraceError, match="version"):
            loads_trace(bytes(data))

    def test_truncated_body(self):
        data = dumps_trace(sample_records())
        with pytest.raises(TraceError, match="truncated"):
            loads_trace(data[:-5])

    def test_unknown_kind(self):
        data = bytearray(dumps_trace([make_branch()]))
        # kind byte sits after the 14-byte header + 16 (pc, target) + 1 flag.
        data[14 + 17] = 99
        with pytest.raises(TraceError, match="kind"):
            loads_trace(bytes(data))


class TestTypedErrors:
    """Every corruption mode raises TraceFormatError with a byte offset."""

    HEADER = 14
    RECORD = 28

    def test_missing_header_offset(self):
        with pytest.raises(TraceFormatError) as exc:
            loads_trace(b"RP")
        assert exc.value.offset == 2
        assert exc.value.unit == "byte"
        assert "(at byte 2)" in str(exc.value)

    def test_bad_magic_offset(self):
        data = bytearray(dumps_trace(sample_records()))
        data[:4] = b"NOPE"
        with pytest.raises(TraceFormatError) as exc:
            loads_trace(bytes(data))
        assert exc.value.offset == 0

    def test_bad_version_offset(self):
        data = bytearray(dumps_trace([]))
        data[4] = 0xFF
        with pytest.raises(TraceFormatError) as exc:
            loads_trace(bytes(data))
        assert exc.value.offset == 4

    def test_truncated_body_offset_is_payload_end(self):
        data = dumps_trace(sample_records())
        with pytest.raises(TraceFormatError) as exc:
            loads_trace(data[:-5])
        assert exc.value.offset == len(data) - 5

    def test_unknown_kind_offset_names_the_record(self):
        recs = [make_branch(pc=0x100), make_branch(pc=0x200), make_branch(pc=0x300)]
        data = bytearray(dumps_trace(recs))
        # Corrupt the kind byte of record 2 (0-based index 2).
        kind_at = self.HEADER + 2 * self.RECORD + 17
        data[kind_at] = 99
        with pytest.raises(TraceFormatError) as exc:
            loads_trace(bytes(data))
        assert exc.value.offset == self.HEADER + 2 * self.RECORD

    def test_direction_invariant_offset_names_the_record(self):
        recs = [make_branch(pc=0x100), make_branch(pc=0x200, kind=BranchKind.RET)]
        data = bytearray(dumps_trace(recs))
        # Clear record 1's taken bit: RET must always be taken.
        data[self.HEADER + self.RECORD + 16] &= ~1
        with pytest.raises(TraceFormatError) as exc:
            loads_trace(bytes(data))
        assert exc.value.offset == self.HEADER + self.RECORD

    def test_format_error_is_trace_error(self):
        assert issubclass(TraceFormatError, TraceError)


class TestReadTraceMmap:
    """read_trace parses through a read-only memory map of the file."""

    def test_mmap_round_trip(self, tmp_path):
        path = tmp_path / "t.trace"
        recs = sample_records()
        write_trace(path, recs)
        assert read_trace(path) == recs

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_bytes(b"")
        with pytest.raises(TraceError, match="missing header"):
            read_trace(path)

    def test_sub_header_file_rejected(self, tmp_path):
        path = tmp_path / "short.trace"
        path.write_bytes(b"RPTR\x01")
        with pytest.raises(TraceError, match="missing header"):
            read_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "cut.trace"
        path.write_bytes(dumps_trace(sample_records())[:-9])
        with pytest.raises(TraceError, match="truncated"):
            read_trace(path)

    def test_loads_accepts_memoryview(self):
        recs = sample_records()
        assert loads_trace(memoryview(dumps_trace(recs))) == recs
