"""Unit tests for the columnar trace store and shared-memory transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.columns import TRACE_DTYPE, ColumnarTrace, SharedTrace
from repro.trace.io import _HEADER, _RECORD, dumps_trace
from repro.trace.records import BranchKind
from tests.conftest import make_branch


def sample_records():
    return [
        make_branch(pc=0x1000, taken=True, inst_gap=3),
        make_branch(pc=0x1008, taken=False, inst_gap=5, load_addr=0xBEEF,
                    depends_on_load=True),
        make_branch(pc=0x2000, kind=BranchKind.CALL),
        make_branch(pc=0x2008, kind=BranchKind.RET),
        make_branch(pc=0x3000, kind=BranchKind.INDIRECT),
    ]


class TestDtype:
    def test_matches_record_struct(self):
        assert TRACE_DTYPE.itemsize == _RECORD.size


class TestRoundTrip:
    def test_records_round_trip(self):
        records = sample_records()
        trace = ColumnarTrace.from_records(records)
        assert len(trace) == len(records)
        assert trace.to_records() == records

    def test_decode_views_payload(self):
        records = sample_records()
        data = dumps_trace(records)
        trace = ColumnarTrace.decode(data)
        assert trace.to_records() == records
        # Zero-copy: the array is a view into the input buffer.
        assert not trace.array.flags.owndata

    def test_empty_trace(self):
        trace = ColumnarTrace.decode(dumps_trace([]))
        assert len(trace) == 0
        assert trace.to_records() == []

    def test_columns(self):
        records = sample_records()
        trace = ColumnarTrace.from_records(records)
        assert trace.pc.tolist() == [r.pc for r in records]
        assert trace.target.tolist() == [r.target for r in records]
        assert trace.taken.tolist() == [r.taken for r in records]
        assert trace.inst_gap.tolist() == [r.inst_gap for r in records]
        assert trace.load_addr.tolist() == [r.load_addr for r in records]
        assert trace.depends_on_load.tolist() == [
            r.depends_on_load for r in records
        ]
        assert trace.kind.tolist() == [int(r.kind) for r in records]

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TraceError):
            ColumnarTrace(np.zeros(4, dtype=np.uint8))


class TestDecodeValidation:
    def test_missing_header(self):
        with pytest.raises(TraceError, match="missing header"):
            ColumnarTrace.decode(b"RP")

    def test_bad_magic(self):
        data = bytearray(dumps_trace(sample_records()))
        data[:4] = b"NOPE"
        with pytest.raises(TraceError, match="magic"):
            ColumnarTrace.decode(bytes(data))

    def test_bad_version(self):
        data = bytearray(dumps_trace(sample_records()))
        data[4:6] = (99).to_bytes(2, "little")
        with pytest.raises(TraceError, match="version"):
            ColumnarTrace.decode(bytes(data))

    def test_truncated_body(self):
        data = dumps_trace(sample_records())
        with pytest.raises(TraceError, match="truncated"):
            ColumnarTrace.decode(data[:-1])

    def test_unknown_kind(self):
        data = bytearray(dumps_trace([make_branch()]))
        data[_HEADER.size + 17] = 200  # kind byte of record 0
        with pytest.raises(TraceError, match="unknown branch kind"):
            ColumnarTrace.decode(bytes(data))

    def test_undefined_flag_bits(self):
        data = bytearray(dumps_trace([make_branch()]))
        data[_HEADER.size + 16] |= 0x80  # flags byte of record 0
        with pytest.raises(TraceError, match="undefined flag bits"):
            ColumnarTrace.decode(bytes(data))

    def test_not_taken_unconditional(self):
        data = bytearray(dumps_trace([make_branch(kind=BranchKind.CALL)]))
        data[_HEADER.size + 16] &= ~0x01  # clear taken on a CALL
        with pytest.raises(TraceError, match="always taken"):
            ColumnarTrace.decode(bytes(data))


class TestSharedTrace:
    def test_publish_attach_round_trip(self):
        records = sample_records()
        shared = ColumnarTrace.from_records(records).publish()
        try:
            assert shared.owner
            attached = SharedTrace.attach(shared.name, len(records))
            assert not attached.owner
            assert attached.to_records() == records
            # Attached view shares the publisher's pages, not a copy.
            assert attached.trace().pc.tolist() == [r.pc for r in records]
            attached.close()
        finally:
            shared.unlink()

    def test_attach_unknown_name(self):
        with pytest.raises(FileNotFoundError):
            SharedTrace.attach("repro-no-such-segment", 1)

    def test_unlink_destroys_segment(self):
        shared = ColumnarTrace.from_records(sample_records()).publish()
        name = shared.name
        shared.unlink()
        with pytest.raises(FileNotFoundError):
            SharedTrace.attach(name, 1)
        shared.unlink()  # idempotent: already-gone is swallowed

    def test_non_owner_close_keeps_segment(self):
        records = sample_records()
        shared = ColumnarTrace.from_records(records).publish()
        try:
            attached = SharedTrace.attach(shared.name, len(records))
            attached.close()
            attached.close()  # idempotent
            attached.unlink()  # non-owner: must NOT destroy the segment
            again = SharedTrace.attach(shared.name, len(records))
            assert again.to_records() == records
            again.close()
        finally:
            shared.unlink()

    def test_empty_trace_publishable(self):
        shared = ColumnarTrace.from_records([]).publish()
        try:
            attached = SharedTrace.attach(shared.name, 0)
            assert attached.to_records() == []
            attached.close()
        finally:
            shared.unlink()
