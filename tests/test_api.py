"""Public-API stability tests: the documented imports keep working."""

import repro


class TestErrors:
    def test_hierarchy(self):
        from repro.errors import (
            ConfigError,
            ExperimentError,
            ReproError,
            SimulationError,
            TraceError,
            WorkloadError,
        )

        for exc in (
            ConfigError,
            TraceError,
            WorkloadError,
            SimulationError,
            ExperimentError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(ReproError, Exception)

    def test_version(self):
        assert repro.__version__


class TestPublicImports:
    def test_core_exports(self):
        from repro.core import (
            BranchHistoryTable,
            InflightBranch,
            LocalPredictorCore,
            LoopPredictor,
            OutstandingBranchQueue,
            RepairPortConfig,
            SnapshotQueue,
            StandardLocalUnit,
            TwoLevelLocalPredictor,
            system_storage,
        )

        assert issubclass(LoopPredictor, LocalPredictorCore)
        assert issubclass(TwoLevelLocalPredictor, LocalPredictorCore)
        del (
            BranchHistoryTable,
            InflightBranch,
            OutstandingBranchQueue,
            RepairPortConfig,
            SnapshotQueue,
            StandardLocalUnit,
            system_storage,
        )

    def test_repair_exports(self):
        from repro.core.repair import (
            BackwardWalkRepair,
            ForwardWalkRepair,
            LimitedPcRepair,
            MultiStageUnit,
            NoRepair,
            PerfectRepair,
            RepairScheme,
            RetireUpdate,
            SnapshotRepair,
        )

        for scheme in (
            PerfectRepair,
            NoRepair,
            RetireUpdate,
            BackwardWalkRepair,
            SnapshotRepair,
            ForwardWalkRepair,
            LimitedPcRepair,
        ):
            assert issubclass(scheme, RepairScheme)
        del MultiStageUnit

    def test_predictor_exports(self):
        from repro.predictors import (
            BimodalPredictor,
            GlobalPredictor,
            GSharePredictor,
            HybridPredictor,
            PerceptronPredictor,
            TagePredictor,
        )

        for predictor in (
            BimodalPredictor,
            GSharePredictor,
            HybridPredictor,
            PerceptronPredictor,
            TagePredictor,
        ):
            assert issubclass(predictor, GlobalPredictor)

    def test_every_global_predictor_speaks_the_protocol(self):
        """Any baseline can drive the pipeline."""
        from repro.pipeline import PipelineModel
        from repro.predictors import (
            BimodalPredictor,
            GSharePredictor,
            HybridPredictor,
            PerceptronPredictor,
        )
        from tests.conftest import loop_trace

        trace = loop_trace(pc=0x4000, trip=5, executions=30)
        for predictor in (
            BimodalPredictor(),
            GSharePredictor(),
            HybridPredictor(),
            PerceptronPredictor(log_entries=6, history_length=12),
        ):
            stats = PipelineModel(predictor).run(trace)
            assert stats.instructions > 0
            assert stats.cycles > 0
