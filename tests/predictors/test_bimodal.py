"""Unit tests for the bimodal predictor."""

import pytest

from repro.errors import ConfigError
from repro.predictors.bimodal import BimodalPredictor


class TestBimodal:
    def test_learns_biased_branch(self):
        predictor = BimodalPredictor(log_entries=8)
        pc = 0x400100
        for _ in range(4):
            pred = predictor.lookup(pc)
            predictor.train(pred, True)
        assert predictor.lookup(pc).taken

        for _ in range(4):
            pred = predictor.lookup(pc)
            predictor.train(pred, False)
        assert not predictor.lookup(pc).taken

    def test_distinct_pcs_distinct_counters(self):
        predictor = BimodalPredictor(log_entries=10)
        # 0x1000 and 0x1100 map to different counters at 1024 entries.
        for _ in range(4):
            predictor.train(predictor.lookup(0x1000), True)
            predictor.train(predictor.lookup(0x1100), False)
        assert predictor.lookup(0x1000).taken
        assert not predictor.lookup(0x1100).taken

    def test_storage(self):
        predictor = BimodalPredictor(log_entries=12, counter_bits=2)
        assert predictor.storage_bits() == 4096 * 2
        assert predictor.storage_kb() == 1.0

    def test_history_recovery_is_noop_safe(self):
        predictor = BimodalPredictor()
        ckpt = predictor.checkpoint()
        predictor.spec_push(0x10, True)
        predictor.recover(ckpt, 0x10, False)  # must not raise

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            BimodalPredictor(log_entries=0)
        with pytest.raises(ConfigError):
            BimodalPredictor(counter_bits=0)

    def test_initial_weakly_taken(self):
        predictor = BimodalPredictor()
        assert predictor.lookup(0x1234).taken
        pred = predictor.lookup(0x1234)
        predictor.train(pred, False)
        assert not predictor.lookup(0x1234).taken
