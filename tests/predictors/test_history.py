"""Unit tests for global history and folded-history machinery."""

import pytest

from repro.errors import ConfigError
from repro.predictors.history import FoldedHistory, GlobalHistory


class TestFoldedHistory:
    def test_incremental_matches_rebuild(self):
        """The O(1) update must equal the from-scratch fold."""
        history = GlobalHistory(max_length=64)
        fold = history.register_fold(FoldedHistory(24, 7))
        reference = FoldedHistory(24, 7)
        pattern = [True, False, True, True, False, False, True] * 15
        for i, taken in enumerate(pattern):
            history.push(pc=0x1000 + 4 * i, taken=taken)
            reference.rebuild(history.ghist)
            assert fold.comp == reference.comp, f"diverged at step {i}"

    def test_rebuild_known_value(self):
        fold = FoldedHistory(8, 4)
        # history bits 0b1011_0110: chunks 0110 and 1011 -> 1101.
        fold.rebuild(0b10110110)
        assert fold.comp == 0b0110 ^ 0b1011

    def test_invalid_lengths(self):
        with pytest.raises(ConfigError):
            FoldedHistory(0, 4)
        with pytest.raises(ConfigError):
            FoldedHistory(4, 0)


class TestGlobalHistory:
    def test_push_shifts_ghist(self):
        history = GlobalHistory(max_length=8)
        history.push(0x4, True)
        history.push(0x8, False)
        history.push(0xC, True)
        assert history.ghist & 0b111 == 0b101

    def test_phist_uses_pc_low_bit(self):
        history = GlobalHistory(max_length=8, path_bits=4)
        history.push(0b1, True)
        history.push(0b0, True)
        history.push(0b1, True)
        assert history.phist == 0b101

    def test_checkpoint_restore_round_trip(self):
        history = GlobalHistory(max_length=32)
        fold = history.register_fold(FoldedHistory(16, 5))
        for i in range(20):
            history.push(4 * i, i % 3 == 0)
        ckpt = history.checkpoint()
        saved = (history.ghist, history.phist, fold.comp)
        for i in range(10):
            history.push(4 * i, i % 2 == 0)
        history.restore(ckpt)
        assert (history.ghist, history.phist, fold.comp) == saved

    def test_restore_and_push_applies_truth(self):
        history = GlobalHistory(max_length=16)
        history.push(0x10, True)
        ckpt = history.checkpoint()
        history.push(0x20, True)  # speculative, wrong
        history.push(0x24, False)  # wrong-path junk
        history.restore_and_push(ckpt, 0x20, False)
        reference = GlobalHistory(max_length=16)
        reference.push(0x10, True)
        reference.push(0x20, False)
        assert history.ghist == reference.ghist

    def test_fold_longer_than_history_rejected(self):
        history = GlobalHistory(max_length=8)
        with pytest.raises(ConfigError):
            history.register_fold(FoldedHistory(16, 4))

    def test_ghist_bounded(self):
        history = GlobalHistory(max_length=8)
        for i in range(100):
            history.push(4 * i, True)
        assert history.ghist < (1 << 9)

    def test_restore_keeps_folds_consistent_with_future_pushes(self):
        """After restore, incremental folding must keep matching rebuild."""
        history = GlobalHistory(max_length=32)
        fold = history.register_fold(FoldedHistory(20, 6))
        for i in range(25):
            history.push(4 * i, i % 2 == 0)
        ckpt = history.checkpoint()
        for i in range(5):
            history.push(4 * i, True)
        history.restore(ckpt)
        for i in range(15):
            history.push(8 * i, i % 3 != 0)
        reference = FoldedHistory(20, 6)
        reference.rebuild(history.ghist)
        assert fold.comp == reference.comp
