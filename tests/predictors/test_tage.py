"""Unit tests for the TAGE predictor."""

import random

import pytest

from repro.errors import ConfigError
from repro.predictors.tage import TageConfig, TagePredictor, TageTableConfig


def drive(predictor, stream):
    """Run (pc, taken) pairs through predict/push/train; returns accuracy."""
    correct = 0
    for pc, taken in stream:
        pred = predictor.lookup(pc)
        if pred.taken == taken:
            correct += 1
        predictor.spec_push(pc, taken)
        predictor.train(pred, taken)
    return correct / len(stream)


class TestTageConfig:
    def test_presets_have_expected_budgets(self):
        assert 6.0 <= TageConfig.kb8().storage_kb() <= 8.5
        assert 8.0 <= TageConfig.kb9().storage_kb() <= 10.5
        assert 45.0 <= TageConfig.kb64().storage_kb() <= 62.0

    def test_presets_strictly_ordered(self):
        assert (
            TageConfig.kb8().storage_bits()
            < TageConfig.kb9().storage_bits()
            < TageConfig.kb64().storage_bits()
        )

    def test_history_lengths_increase(self):
        for config in (TageConfig.kb8(), TageConfig.kb9(), TageConfig.kb64()):
            lengths = [t.history_length for t in config.tables]
            assert lengths == sorted(lengths)
            assert len(set(lengths)) == len(lengths)

    def test_non_increasing_lengths_rejected(self):
        tables = (
            TageTableConfig(history_length=10, log_entries=6, tag_bits=8),
            TageTableConfig(history_length=5, log_entries=6, tag_bits=8),
        )
        with pytest.raises(ConfigError):
            TageConfig(name="bad", bimodal_log=10, tables=tables)

    def test_table_validation(self):
        with pytest.raises(ConfigError):
            TageTableConfig(history_length=0, log_entries=6, tag_bits=8)
        with pytest.raises(ConfigError):
            TageTableConfig(history_length=4, log_entries=2, tag_bits=8)


class TestTagePrediction:
    def test_strongly_biased_branch(self):
        predictor = TagePredictor()
        stream = [(0x40_0000, True)] * 200
        assert drive(predictor, stream) > 0.95

    def test_alternating_branch(self):
        predictor = TagePredictor()
        stream = [(0x40_0000, i % 2 == 0) for i in range(600)]
        assert drive(predictor, stream[200:]) > 0.9 or drive(predictor, stream) > 0.8

    def test_short_loop_exits_captured(self):
        """TAGE should learn exits of a short clean loop (history fits)."""
        predictor = TagePredictor()
        stream = []
        for _ in range(150):
            stream.extend([(0x40_0000, True)] * 6)
            stream.append((0x40_0000, False))
        accuracy = drive(predictor, stream)
        # 1-in-7 outcomes is the exit; always-taken scores ~0.857.
        assert accuracy > 0.93

    def test_global_correlation_captured(self):
        """A branch equal to the previous branch's outcome."""
        predictor = TagePredictor()
        rng = random.Random(3)
        stream = []
        last = True
        for _ in range(800):
            lead = rng.random() < 0.5
            stream.append((0x10_0000, lead))
            stream.append((0x20_0000, lead))  # copies the leader
            last = lead
        predictor_acc = drive(predictor, stream)
        # The follower is perfectly predictable; leader is a coin flip.
        assert predictor_acc > 0.7

    def test_random_branch_near_chance(self):
        predictor = TagePredictor()
        rng = random.Random(11)
        stream = [(0x40_0000, rng.random() < 0.5) for _ in range(500)]
        accuracy = drive(predictor, stream)
        assert 0.3 < accuracy < 0.7

    def test_beats_bimodal_on_history_patterns(self):
        from repro.predictors.bimodal import BimodalPredictor

        pattern = [True, True, False, True, False, False]
        stream = [(0x40_0000, pattern[i % len(pattern)]) for i in range(900)]
        tage_acc = drive(TagePredictor(), stream)

        bimodal = BimodalPredictor()
        bim_correct = 0
        for pc, taken in stream:
            pred = bimodal.lookup(pc)
            if pred.taken == taken:
                bim_correct += 1
            bimodal.train(pred, taken)
        assert tage_acc > bim_correct / len(stream)


class TestTageRecovery:
    def test_recover_restores_histories(self):
        predictor = TagePredictor()
        for i in range(100):
            pred = predictor.lookup(0x1000 + 16 * (i % 7))
            predictor.spec_push(0x1000 + 16 * (i % 7), i % 3 == 0)
            predictor.train(pred, i % 3 == 0)
        ckpt = predictor.checkpoint()
        ghist = predictor.history.ghist

        # Wrong-path pollution...
        for i in range(20):
            predictor.spec_push(0x9000 + 4 * i, True)
        predictor.recover(ckpt, 0x5000, False)
        assert predictor.history.ghist == (ghist << 1) & predictor.history._ghist_mask

    def test_recovery_preserves_accuracy(self):
        """Injecting and recovering wrong paths shouldn't break learning."""
        predictor = TagePredictor()
        stream = [(0x40_0000, i % 4 != 3) for i in range(400)]
        correct = 0
        for i, (pc, taken) in enumerate(stream):
            pred = predictor.lookup(pc)
            if pred.taken == taken:
                correct += 1
            ckpt = predictor.checkpoint()
            predictor.spec_push(pc, taken)
            if i % 10 == 0:
                # Simulate a misprediction episode: pollute then recover.
                for j in range(5):
                    predictor.spec_push(0x8000 + 4 * j, j % 2 == 0)
                predictor.history.restore(ckpt)
                predictor.history.push(pc, taken)
            predictor.train(pred, taken)
        assert correct / len(stream) > 0.8

    def test_storage_matches_config(self):
        config = TageConfig.kb8()
        assert TagePredictor(config).storage_bits() == config.storage_bits()

    def test_deterministic_across_instances(self):
        stream = [(0x4000 + 8 * (i % 13), (i * 7) % 5 < 3) for i in range(500)]
        assert drive(TagePredictor(seed=1), stream) == drive(
            TagePredictor(seed=1), stream
        )
