"""Unit tests for the gshare predictor."""

import pytest

from repro.errors import ConfigError
from repro.predictors.gshare import GSharePredictor


def run_sequence(predictor, pc, outcomes):
    """Drive predict/spec-push/train for a single-branch stream."""
    correct = 0
    for taken in outcomes:
        pred = predictor.lookup(pc)
        if pred.taken == taken:
            correct += 1
        predictor.spec_push(pc, taken)
        predictor.train(pred, taken)
    return correct


class TestGShare:
    def test_learns_alternating_pattern(self):
        predictor = GSharePredictor(log_entries=12, history_length=8)
        outcomes = [True, False] * 200
        correct = run_sequence(predictor, 0x4000, outcomes)
        # After warmup, the history disambiguates the two phases.
        assert correct > len(outcomes) * 0.8

    def test_learns_period_patterns(self):
        predictor = GSharePredictor(log_entries=12, history_length=10)
        pattern = [True, True, False]
        outcomes = pattern * 300
        correct = run_sequence(predictor, 0x4000, outcomes)
        assert correct > len(outcomes) * 0.85

    def test_history_length_cannot_exceed_index(self):
        with pytest.raises(ConfigError):
            GSharePredictor(log_entries=8, history_length=9)

    def test_recovery_restores_prediction_state(self):
        predictor = GSharePredictor(log_entries=10, history_length=6)
        for i in range(50):
            pred = predictor.lookup(0x4000)
            predictor.spec_push(0x4000, i % 2 == 0)
            predictor.train(pred, i % 2 == 0)
        ckpt = predictor.checkpoint()
        ghist_before = predictor.history.ghist
        predictor.spec_push(0x4000, True)
        predictor.spec_push(0x4000, True)
        predictor.recover(ckpt, 0x4000, False)
        assert predictor.history.ghist == ((ghist_before << 1) | 0) & predictor.history._ghist_mask

    def test_storage(self):
        predictor = GSharePredictor(log_entries=14)
        assert predictor.storage_bits() == (1 << 14) * 2
