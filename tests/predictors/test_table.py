"""Table-indexed predictor specs and the two-level local predictor."""

import pytest

from repro.errors import ConfigError
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.table import (
    LocalTwoLevelPredictor,
    TablePredictorSpec,
    maybe_table_predictor,
    parse_table_predictor,
)


class TestParsing:
    def test_bimodal_defaults(self):
        spec = parse_table_predictor("bimodal")
        assert (spec.kind, spec.log_entries, spec.counter_bits) == ("bimodal", 12, 2)

    def test_bimodal_explicit(self):
        spec = parse_table_predictor("bimodal:8:3")
        assert spec.spec_string == "bimodal:8:3"

    def test_gshare_history_defaults_to_log(self):
        spec = parse_table_predictor("gshare:14")
        assert spec.history_bits == 14
        assert spec.spec_string == "gshare:14:14"

    def test_local2l_fields(self):
        spec = parse_table_predictor("local2l:10:8:12")
        assert spec.bht_log_entries == 10
        assert spec.history_bits == 8
        assert spec.log_entries == 12
        assert spec.spec_string == "local2l:10:8:12:2"

    def test_canonical_roundtrip(self):
        for text in ("bimodal:9", "gshare:11:7", "local2l:6:5:8:3"):
            spec = parse_table_predictor(text)
            assert parse_table_predictor(spec.spec_string) == spec

    @pytest.mark.parametrize(
        "text",
        ["", "bimodal:", "bimodal:abc", "gshare:0", "gshare:10:11",
         "bimodal:30", "bimodal:10:0", "bimodal:10:9", "local2l:10:0",
         "perceptron:10"],
    )
    def test_malformed_specs_raise(self, text):
        with pytest.raises(ConfigError):
            parse_table_predictor(text)

    def test_maybe_unknown_kind_is_none(self):
        assert maybe_table_predictor("forward-walk") is None
        assert maybe_table_predictor("tage:10") is None

    def test_maybe_known_kind_malformed_raises(self):
        with pytest.raises(ConfigError):
            maybe_table_predictor("gshare:nope")


class TestBuild:
    def test_builds_matching_predictor_types(self):
        assert isinstance(parse_table_predictor("bimodal:6").build(), BimodalPredictor)
        assert isinstance(parse_table_predictor("gshare:6:4").build(), GSharePredictor)
        assert isinstance(
            parse_table_predictor("local2l:5:4:6").build(), LocalTwoLevelPredictor
        )


def _small_local2l() -> LocalTwoLevelPredictor:
    return LocalTwoLevelPredictor(
        bht_log_entries=4, history_bits=4, pt_log_entries=6, counter_bits=2
    )


class TestLocalTwoLevel:
    def test_learns_short_period_pattern(self):
        pred = _small_local2l()
        pc = 0x4000
        pattern = [True, True, False]
        correct = 0
        for i in range(300):
            actual = pattern[i % 3]
            prediction = pred.lookup(pc)
            pred.train(prediction, actual)
            if i >= 60 and prediction.taken == actual:
                correct += 1
        # A 4-bit local history uniquely identifies every position of a
        # period-3 pattern, so the warm predictor should be near-perfect.
        assert correct == 240

    def test_storage_bits(self):
        pred = _small_local2l()
        assert pred.storage_bits() == (1 << 4) * 4 + (1 << 6) * 2

    def test_distinct_pcs_use_distinct_bht_entries(self):
        pred = _small_local2l()
        # Train one PC heavily not-taken; a second PC mapping to a
        # different BHT entry and PT counter must still see weak-taken.
        for _ in range(50):
            pred.train(pred.lookup(0x1000), False)
        assert pred.lookup(0x1000).taken is False
        fresh = _small_local2l()
        other = 0x1000 + (1 << 2)
        assert fresh.lookup(other).taken is True

    def test_spec_roundtrip(self):
        pred = _small_local2l()
        assert pred.spec == TablePredictorSpec(
            kind="local2l", log_entries=6, counter_bits=2,
            history_bits=4, bht_log_entries=4,
        )
