"""Unit tests for the perceptron predictor."""

import random

import pytest

from repro.errors import ConfigError
from repro.predictors.perceptron import PerceptronPredictor


def drive(predictor, stream):
    correct = 0
    for pc, taken in stream:
        pred = predictor.lookup(pc)
        if pred.taken == taken:
            correct += 1
        predictor.spec_push(pc, taken)
        predictor.train(pred, taken)
    return correct / len(stream)


class TestPerceptron:
    def test_biased_branch(self):
        predictor = PerceptronPredictor()
        stream = [(0x4000, True)] * 300
        assert drive(predictor, stream) > 0.95

    def test_linearly_separable_correlation(self):
        """Perceptrons excel at linear history functions."""
        predictor = PerceptronPredictor(history_length=16)
        rng = random.Random(7)
        stream = []
        history = [False] * 4
        for _ in range(1500):
            lead = rng.random() < 0.5
            stream.append((0x1000, lead))
            history.append(lead)
            # Follower equals the outcome two branches back.
            stream.append((0x2000, history[-2]))
        accuracy = drive(predictor, stream[600:])
        assert accuracy > 0.72

    def test_alternating_pattern(self):
        predictor = PerceptronPredictor()
        stream = [(0x4000, i % 2 == 0) for i in range(800)]
        assert drive(predictor, stream[200:]) > 0.9

    def test_weights_stay_clipped(self):
        predictor = PerceptronPredictor(weight_bits=4)
        stream = [(0x4000, True)] * 500
        drive(predictor, stream)
        for weights in predictor._weights:
            assert all(-8 <= w <= 7 for w in weights)

    def test_default_threshold_formula(self):
        predictor = PerceptronPredictor(history_length=24)
        assert predictor.threshold == int(1.93 * 24 + 14)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PerceptronPredictor(log_entries=0)
        with pytest.raises(ConfigError):
            PerceptronPredictor(history_length=0)
        with pytest.raises(ConfigError):
            PerceptronPredictor(weight_bits=1)

    def test_storage(self):
        predictor = PerceptronPredictor(log_entries=8, history_length=10, weight_bits=8)
        assert predictor.storage_bits() == 256 * 11 * 8

    def test_history_recovery(self):
        predictor = PerceptronPredictor()
        for i in range(50):
            pred = predictor.lookup(0x4000)
            predictor.spec_push(0x4000, i % 2 == 0)
            predictor.train(pred, i % 2 == 0)
        ckpt = predictor.checkpoint()
        ghist = predictor.history.ghist
        predictor.spec_push(0x9000, True)
        predictor.recover(ckpt, 0x4000, False)
        assert predictor.history.ghist == (ghist << 1) & predictor.history._ghist_mask
