"""Unit tests for the TAGE + statistical corrector baseline."""

import random

import pytest

from repro.errors import ConfigError
from repro.predictors.statistical_corrector import ScConfig, ScTagePredictor
from repro.predictors.tage import TagePredictor


def drive(predictor, stream):
    correct = 0
    for pc, taken in stream:
        pred = predictor.lookup(pc)
        if pred.taken == taken:
            correct += 1
        predictor.spec_push(pc, taken)
        predictor.train(pred, taken)
    return correct / len(stream)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ScConfig(log_entries=2)
        with pytest.raises(ConfigError):
            ScConfig(counter_bits=2)
        with pytest.raises(ConfigError):
            ScConfig(history_lengths=())
        with pytest.raises(ConfigError):
            ScConfig(history_lengths=(10, 4))

    def test_sc_history_must_fit_tage_window(self):
        with pytest.raises(ConfigError):
            ScTagePredictor(sc_config=ScConfig(history_lengths=(4, 4096)))

    def test_storage_adds_sc_budget(self):
        sc = ScTagePredictor()
        assert sc.storage_bits() > TagePredictor().storage_bits()


class TestBehaviour:
    def test_biased_branch(self):
        stream = [(0x4000, True)] * 300
        assert drive(ScTagePredictor(), stream) > 0.95

    def test_shares_history_with_tage(self):
        sc = ScTagePredictor()
        assert sc.history is sc.tage.history

    def test_recovery_keeps_folds_consistent(self):
        sc = ScTagePredictor()
        rng = random.Random(5)
        for i in range(80):
            pred = sc.lookup(0x4000 + 16 * (i % 5))
            taken = rng.random() < 0.6
            sc.spec_push(0x4000, taken)
            sc.train(pred, taken)
        ckpt = sc.checkpoint()
        saved = [fold.comp for fold in sc._folds]
        for _ in range(10):
            sc.spec_push(0x9000, True)
        sc.history.restore(ckpt)
        assert [fold.comp for fold in sc._folds] == saved

    def test_not_worse_than_tage_on_mixed_stream(self):
        """On a mixed stream the corrector must not hurt noticeably."""
        rng = random.Random(11)
        stream = []
        for i in range(3000):
            pc = 0x4000 + 16 * (i % 7)
            taken = (i % 5 != 0) if pc % 32 else (rng.random() < 0.7)
            stream.append((pc, taken))
        sc_acc = drive(ScTagePredictor(), stream)
        tage_acc = drive(TagePredictor(), stream)
        assert sc_acc >= tage_acc - 0.02

    def test_inversions_happen_and_threshold_adapts(self):
        """A statistically anti-correlated branch: TAGE's provider keeps
        flip-flopping while the per-(pc, direction) bias is strong."""
        sc = ScTagePredictor()
        rng = random.Random(3)
        # Branch is taken 85% of the time but with pseudo-random noise
        # that keeps allocating misleading TAGE entries.
        stream = [(0x77770, rng.random() < 0.85) for _ in range(4000)]
        drive(sc, stream)
        assert sc.inversions > 0
        assert 4 <= sc._threshold <= 60
