"""Unit tests for saturating-counter primitives."""

import pytest

from repro.errors import ConfigError
from repro.predictors.counters import (
    SaturatingCounter,
    center_init,
    counter_taken,
    counter_update,
    saturating_dec,
    saturating_inc,
)


class TestFunctions:
    def test_inc_saturates(self):
        assert saturating_inc(2, 3) == 3
        assert saturating_inc(3, 3) == 3

    def test_dec_saturates(self):
        assert saturating_dec(1) == 0
        assert saturating_dec(0) == 0
        assert saturating_dec(5, min_value=2) == 4
        assert saturating_dec(2, min_value=2) == 2

    def test_counter_update_direction(self):
        assert counter_update(1, True, 3) == 2
        assert counter_update(1, False, 3) == 0
        assert counter_update(3, True, 3) == 3
        assert counter_update(0, False, 3) == 0

    def test_counter_taken_msb(self):
        assert not counter_taken(0, 2)
        assert not counter_taken(1, 2)
        assert counter_taken(2, 2)
        assert counter_taken(3, 2)

    def test_center_init(self):
        assert center_init(2, True) == 2
        assert center_init(2, False) == 1
        assert center_init(3, True) == 4
        assert center_init(3, False) == 3


class TestSaturatingCounter:
    def test_default_two_bit(self):
        counter = SaturatingCounter()
        assert counter.max_value == 3
        assert not counter.taken

    def test_hysteresis(self):
        counter = SaturatingCounter(bits=2, value=2)
        counter.update(False)
        assert not counter.taken  # 1: weakly not-taken
        counter.update(True)
        assert counter.taken

    def test_saturation_both_ends(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.update(True)
        assert counter.value == 3
        for _ in range(10):
            counter.update(False)
        assert counter.value == 0

    def test_is_weak(self):
        assert SaturatingCounter(bits=2, value=1).is_weak
        assert SaturatingCounter(bits=2, value=2).is_weak
        assert not SaturatingCounter(bits=2, value=0).is_weak
        assert not SaturatingCounter(bits=2, value=3).is_weak

    def test_reset(self):
        counter = SaturatingCounter(bits=3, value=7)
        counter.reset(False)
        assert counter.value == 3
        assert not counter.taken
        counter.reset(True)
        assert counter.value == 4
        assert counter.taken

    def test_invalid_width(self):
        with pytest.raises(ConfigError):
            SaturatingCounter(bits=0)

    def test_invalid_initial_value(self):
        with pytest.raises(ConfigError):
            SaturatingCounter(bits=2, value=4)
