"""Unit tests for the hybrid (tournament) predictor."""

import pytest

from repro.errors import ConfigError
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.hybrid import HybridPredictor


def drive(predictor, stream):
    correct = 0
    for pc, taken in stream:
        pred = predictor.lookup(pc)
        if pred.taken == taken:
            correct += 1
        predictor.spec_push(pc, taken)
        predictor.train(pred, taken)
    return correct / len(stream)


class TestHybrid:
    def test_biased_branch(self):
        stream = [(0x4000, True)] * 300
        assert drive(HybridPredictor(), stream) > 0.95

    def test_beats_bimodal_on_patterns(self):
        pattern = [True, True, False]
        stream = [(0x4000, pattern[i % 3]) for i in range(900)]
        hybrid_acc = drive(HybridPredictor(), stream)
        bimodal = BimodalPredictor()
        bim_correct = 0
        for pc, taken in stream:
            pred = bimodal.lookup(pc)
            if pred.taken == taken:
                bim_correct += 1
            bimodal.train(pred, taken)
        assert hybrid_acc > bim_correct / len(stream)

    def test_tracks_gshare_on_history_patterns(self):
        pattern = [True, False, False, True]
        stream = [(0x4000, pattern[i % 4]) for i in range(1200)]
        hybrid_acc = drive(HybridPredictor(), stream[400:])
        gshare_acc = drive(GSharePredictor(), stream[400:])
        assert hybrid_acc > gshare_acc - 0.1

    def test_chooser_learns_per_pc(self):
        predictor = HybridPredictor()
        # PC A: pattern branch (gshare wins); PC B: noisy-but-biased
        # short-history branch where bimodal is steadier.
        pattern = [True, False]
        stream = []
        for i in range(800):
            stream.append((0x4000, pattern[i % 2]))
        drive(predictor, stream)
        index = predictor._chooser_index(0x4000)
        assert predictor._chooser[index] >= 2  # prefers gshare

    def test_validation(self):
        with pytest.raises(ConfigError):
            HybridPredictor(chooser_log_entries=0)

    def test_storage_sums_components(self):
        predictor = HybridPredictor()
        assert predictor.storage_bits() == (
            predictor.bimodal.storage_bits()
            + predictor.gshare.storage_bits()
            + (1 << 12) * 2
        )

    def test_shared_history_object(self):
        predictor = HybridPredictor()
        assert predictor.history is predictor.gshare.history
