"""Tier-1 guard: the whole tree is simlint-clean.

This is the test that turns simlint's rules into enforced invariants —
a PR introducing unseeded randomness into a simulation module, a stray
speculative-state write, a non-ReproError raise or an unannotated
public function fails the suite here with the exact violation listed.
"""

from pathlib import Path

from repro.devtools.simlint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Every tree the project lints in CI (`repro lint` over the same set).
LINTED_TREES = ("src", "tests", "tools", "benchmarks", "examples")


def test_tree_is_violation_free():
    report = lint_paths([str(REPO_ROOT / tree) for tree in LINTED_TREES])
    rendered = "\n".join(v.render() for v in report.violations)
    assert report.clean, f"simlint violations:\n{rendered}"
    # The guard should never silently lint an empty set.
    assert report.files > 150
