"""Run the external gates (mypy --strict, ruff) when they are installed.

The canonical runs live in CI's ``lint`` job; these tests give the same
signal locally for contributors who have the tools, and skip cleanly in
minimal environments (the baked-in toolchain ships neither).
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run(args: list) -> subprocess.CompletedProcess:
    return subprocess.run(
        args, cwd=REPO_ROOT, capture_output=True, text=True, timeout=600
    )


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict():
    proc = _run(
        [sys.executable, "-m", "mypy", "--strict", "src/repro", "tools"]
    )
    assert proc.returncode == 0, f"mypy --strict failed:\n{proc.stdout}{proc.stderr}"


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_check():
    proc = _run([sys.executable, "-m", "ruff", "check", "."])
    assert proc.returncode == 0, f"ruff check failed:\n{proc.stdout}{proc.stderr}"
