"""Shared devtools-test setup.

The lint CLI defaults the incremental cache and baseline to
cwd-relative paths (``.simlint-cache``, ``.simlint-baseline.json``).
Tests that invoke the CLI must not share that state with the developer
checkout they happen to run from — a cache record written by one test
run could satisfy a later run's lookup (same tmp path, same content)
and mask a behaviour change.  Every test in this package therefore runs
from its own scratch cwd; tests reference the repo via absolute paths
already.
"""

from pathlib import Path

import pytest


@pytest.fixture(autouse=True)
def _isolated_lint_state(tmp_path_factory, monkeypatch) -> Path:
    cwd = tmp_path_factory.mktemp("lint-cwd")
    monkeypatch.chdir(cwd)
    return cwd
