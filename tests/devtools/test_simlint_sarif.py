"""SARIF output: schema shape, rule catalogue, result mapping."""

import json

from repro.devtools.simlint import lint_paths
from repro.devtools.simlint.sarif import render_sarif, to_sarif


def report_for(tmp_path, source: str):
    bad = tmp_path / "src" / "repro" / "core" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(source)
    return lint_paths([str(tmp_path)])


class TestLogShape:
    def test_schema_and_version(self, tmp_path):
        log = to_sarif(report_for(tmp_path, "X = 1\n"))
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        assert len(log["runs"]) == 1

    def test_rule_catalogue_includes_v2_rules(self, tmp_path):
        log = to_sarif(report_for(tmp_path, "X = 1\n"))
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "simlint"
        ids = {rule["id"] for rule in driver["rules"]}
        assert {
            "DET001",
            "DET002",
            "ERR001",
            "IMP001",
            "LOCK001",
            "LOCK002",
            "PURE001",
            "STALE001",
        } <= ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"] == {"level": "error"}

    def test_clean_report_has_empty_results(self, tmp_path):
        log = to_sarif(report_for(tmp_path, "X = 1\n"))
        assert log["runs"][0]["results"] == []


class TestResults:
    def test_violation_maps_to_result(self, tmp_path):
        report = report_for(
            tmp_path, "def f(x):\n    raise ValueError(x)\n"
        )
        results = to_sarif(report)["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"API001", "ERR001"}
        err = next(r for r in results if r["ruleId"] == "ERR001")
        location = err["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(
            "src/repro/core/mod.py"
        )
        assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert location["region"]["startLine"] == 2
        assert location["region"]["startColumn"] >= 1
        assert "ValueError" in err["message"]["text"]

    def test_render_is_valid_json(self, tmp_path):
        report = report_for(tmp_path, "def f(x):\n    raise ValueError(x)\n")
        parsed = json.loads(render_sarif(report))
        assert parsed == to_sarif(report)
