"""TEL001 fixture: telemetry calls that break no-op fidelity."""


def consumed_result(tel):
    count = tel.registry.counter("bht.writes")  # TEL001: assigned (line 5)
    if tel.emit(count):  # TEL001: used as condition (line 6)
        return tel.registry.counter("x").value
    return None


def mutating_args(tel, queue, walk):
    tel.emit(queue.pop())  # TEL001: argument mutates (line 12)
    tel.registry.counter("obq.drops").inc(len(walk := queue))  # TEL001 (line 13)


def compliant(tel, writes):
    if tel.enabled:
        tel.registry.counter("bht.writes").inc(writes)
        tel.registry.histogram("walk.len").observe(writes)
    with tel.registry.timer("repair.walk"):
        pass
