"""ERR001 fixture: error-hygiene violations and compliant patterns."""

from repro.errors import ConfigError, ReproError


def bad_raise(n):
    if n < 0:
        raise ValueError("negative")  # ERR001: builtin raise (line 8)


def bad_handlers(run):
    try:
        run()
    except:  # ERR001: bare except (line 14)
        pass
    try:
        run()
    except Exception:  # ERR001: broad without re-raise (line 18)
        return None
    return None


def compliant(n, run):
    if n < 0:
        raise ConfigError("negative")
    try:
        run()
    except ReproError:
        pass
    except Exception:
        # Broad but re-raising: allowed (cleanup-then-propagate).
        raise
    if n == 0:
        raise NotImplementedError  # abstract-method convention: allowed
