"""GEN001 fixture: codegen templates violating the generation contract.

Linted with a forced SIM role by ``test_simlint_rules.py``; as test
code its on-disk role keeps ``repro lint tests`` clean.
"""

BROKEN_STEP_TEMPLATE = """
def step(model, records):
    return ][
"""

DYNAMIC_STEP_TEMPLATE = """
def step(model, records):
    fn = eval("lambda r: r.taken")
    exec("x = 1")
    return compile("0", "<s>", "eval")
"""

TAINTED_STEP_TEMPLATE = """
import os
import time


def step(model, records, unit):
    start = time.time()
    limit = os.environ["REPRO_LIMIT"]
    unit.bht._state[0] = 1
    return start, limit
"""

CLEAN_STEP_TEMPLATE = """
def step(model, records):
    total = 0
    for record in records:
        total += 1 if record.taken else 0
    return total
"""

not_a_template = "def f():\n    return eval('1')\n"
