"""Suppression fixture: violations silenced by both directive forms."""

# simlint: ignore-file[API001] -- fixture exercises file-level suppression


def bad_raise(n):
    if n < 0:
        raise ValueError("negative")  # simlint: ignore[ERR001] -- demo


def still_bad(n):
    if n < 0:
        raise TypeError("negative")  # ERR001: NOT suppressed (line 13)
