"""DET001 fixture: every nondeterminism source the rule knows."""

import os
import random
import time


def unseeded():  # line 8
    return random.randint(0, 7)  # DET001: global RNG (line 9)


def wall_clock():
    return time.perf_counter()  # DET001: wall clock (line 13)


def env_reads():
    a = os.environ["REPRO_SCALE"]  # DET001: environ subscript (line 17)
    b = os.environ.get("REPRO_SCALE")  # DET001: environ.get (line 18)
    c = os.getenv("REPRO_SCALE")  # DET001: getenv (line 19)
    return a, b, c


def set_iteration(pcs):
    total = 0
    for pc in set(pcs):  # DET001: set() iteration (line 25)
        total += pc
    return total + sum(x for x in {1, 2, 3})  # DET001: set literal (line 27)


def hash_fold(pc):
    return hash(pc) & 0xFF  # DET001: hash() of non-constant (line 31)


def compliant(pcs, rng):
    for pc in sorted(set(pcs)):  # sorted() makes the order deterministic
        rng.random()  # a seeded instance, not the global module
    return len(pcs)
