"""SPEC001 fixture: cross-object speculative-state writes."""


def corrupt_bht(unit, slot):
    unit.bht._state[slot] = 0  # SPEC001: foreign _state write (line 5)
    unit.bht._valid[slot] = False  # SPEC001: foreign _valid write (line 6)
    unit.pt._conf[slot] += 1  # SPEC001: foreign _conf write (line 7)


def update(unit, slot):
    # Declared update method: the write is sanctioned.
    unit.bht._state[slot] = 1


class OwnState:
    def __init__(self):
        # A class may initialise its own slots anywhere.
        self._state = [0] * 8

    def poke(self, slot):
        self._state[slot] = 3  # self-write: the class owns its invariant


def read_only(unit, slot):
    return unit.bht._state[slot]  # reads are always fine
