"""API001 fixture: public signatures with and without annotations."""


def bad_function(trace, branches=100):  # API001 (line 4)
    return len(trace) + branches


def half_annotated(trace: list) -> int:  # fully annotated: not flagged
    return len(trace)


class Predictor:
    def __init__(self, entries):  # API001: __init__ params + return (line 13)
        self.entries = entries

    def predict(self, pc):  # API001 (line 16)
        return pc % self.entries

    def _probe(self, pc):  # private: exempt
        return pc

    @staticmethod
    def fold(pc: int) -> int:
        return pc & 0xFF


class _Internal:
    def visible_but_private_class(self, x):  # private class: exempt
        return x


def annotated(trace: list[int], *, branches: int = 100) -> int:
    def nested(x):  # nested: exempt
        return x

    return nested(len(trace) + branches)
