"""LOCK001 fixture: unguarded access to lock-protected state.

``_jobs`` and ``_order`` are written under ``self._lock`` in ``put``,
which marks them lock-guarded; the accesses in ``get`` and ``drop``
skip the lock and must be flagged.  ``__init__`` and the ``*_locked``
helper are exempt by convention.
"""

import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._jobs = {}
        self._order = []

    def put(self, key, value):
        with self._lock:
            self._jobs[key] = value
            self._order.append(key)

    def get(self, key):
        return self._jobs.get(key)

    def drop(self, key):
        self._jobs.pop(key, None)
        del self._order[0]

    def size_locked(self):
        return len(self._jobs)
