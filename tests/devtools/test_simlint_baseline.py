"""Baseline ratchet: waiving, occurrence budgets, update flow, format guards."""

from collections import Counter

import pytest

from repro.devtools.simlint import LintError, lint_paths
from repro.devtools.simlint.baseline import (
    Baseline,
    load_baseline,
    write_baseline,
)
from repro.devtools.simlint.model import Violation


def violation(path: str, rule: str = "ERR001", message: str = "m") -> Violation:
    return Violation(path=path, line=1, col=0, rule=rule, message=message)


def write_bad_module(tmp_path):
    target = tmp_path / "src" / "repro" / "harness" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text("def f(x):\n    raise ValueError(x)\n")
    return target


class TestApply:
    def test_waives_recorded_findings(self, tmp_path):
        baseline = Baseline(
            Counter({("a.py", "ERR001", "m"): 1}), root=str(tmp_path)
        )
        fresh, waived = baseline.apply([violation(str(tmp_path / "a.py"))])
        assert fresh == []
        assert waived == 1

    def test_second_identical_finding_fails_gate(self, tmp_path):
        """The occurrence budget: one waiver does not cover two findings."""
        baseline = Baseline(
            Counter({("a.py", "ERR001", "m"): 1}), root=str(tmp_path)
        )
        found = [violation(str(tmp_path / "a.py"))] * 2
        fresh, waived = baseline.apply(found)
        assert len(fresh) == 1
        assert waived == 1

    def test_line_numbers_do_not_matter(self, tmp_path):
        baseline = Baseline(
            Counter({("a.py", "ERR001", "m"): 1}), root=str(tmp_path)
        )
        moved = Violation(
            path=str(tmp_path / "a.py"), line=99, col=4, rule="ERR001", message="m"
        )
        fresh, waived = baseline.apply([moved])
        assert fresh == [] and waived == 1

    def test_different_message_is_fresh(self, tmp_path):
        baseline = Baseline(
            Counter({("a.py", "ERR001", "m"): 1}), root=str(tmp_path)
        )
        fresh, waived = baseline.apply(
            [violation(str(tmp_path / "a.py"), message="other")]
        )
        assert len(fresh) == 1 and waived == 0


class TestFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(str(path), [violation(str(tmp_path / "a.py"))])
        loaded = load_baseline(str(path))
        assert loaded.total == 1
        assert loaded.entries == Counter({("a.py", "ERR001", "m"): 1})

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")).total == 0

    def test_malformed_json_raises_lint_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(LintError, match="unreadable baseline"):
            load_baseline(str(path))

    def test_wrong_version_raises_lint_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(LintError, match="unsupported format"):
            load_baseline(str(path))

    def test_malformed_entry_raises_lint_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 1, "entries": [{"path": "a.py"}]}')
        with pytest.raises(LintError, match="malformed baseline entry"):
            load_baseline(str(path))


class TestLintPathsIntegration:
    def test_update_then_gate_passes(self, tmp_path):
        write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        updated = lint_paths(
            [str(tmp_path / "src")],
            baseline_path=str(baseline),
            update_baseline=True,
        )
        assert updated.clean  # debt recorded, not reported
        gated = lint_paths([str(tmp_path / "src")], baseline_path=str(baseline))
        assert gated.clean
        assert gated.waived > 0

    def test_new_finding_still_fails(self, tmp_path):
        target = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        lint_paths(
            [str(tmp_path / "src")],
            baseline_path=str(baseline),
            update_baseline=True,
        )
        target.write_text(
            target.read_text() + "\n\ndef g(y):\n    raise KeyError(y)\n"
        )
        report = lint_paths([str(tmp_path / "src")], baseline_path=str(baseline))
        assert not report.clean
        assert all(v.line >= 4 for v in report.violations)

    def test_fixed_debt_shrinks_on_update(self, tmp_path):
        target = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        lint_paths(
            [str(tmp_path / "src")],
            baseline_path=str(baseline),
            update_baseline=True,
        )
        assert load_baseline(str(baseline)).total > 0
        target.write_text("def f(x: int) -> int:\n    return x\n")
        lint_paths(
            [str(tmp_path / "src")],
            baseline_path=str(baseline),
            update_baseline=True,
        )
        assert load_baseline(str(baseline)).total == 0
