"""Incremental-cache behaviour: hits, misses, and version invalidation."""

import dataclasses

from repro.devtools.simlint import lint_paths
from repro.devtools.simlint.cache import FileResult, LintCache, file_key, program_key
from repro.devtools.simlint.model import REGISTRY, local_rules, rules_signature


BAD_SOURCE = "def f(x):\n    raise ValueError(x)\n"


def write_bad_module(tmp_path):
    target = tmp_path / "src" / "repro" / "harness" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text(BAD_SOURCE)
    return target


def local_signature() -> str:
    return rules_signature(local_rules())


class TestWarmRuns:
    def test_warm_run_matches_cold_run(self, tmp_path):
        write_bad_module(tmp_path)
        cache_dir = str(tmp_path / "cache")
        cold = lint_paths([str(tmp_path / "src")], cache_dir=cache_dir)
        warm = lint_paths([str(tmp_path / "src")], cache_dir=cache_dir)
        assert warm.violations == cold.violations
        assert warm.files == cold.files

    def test_warm_run_reads_cached_record(self, tmp_path):
        """Poison the record for the file's key: the hit must be served."""
        target = write_bad_module(tmp_path)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(tmp_path / "src")], cache_dir=cache_dir)

        cache = LintCache(cache_dir)
        key = file_key(BAD_SOURCE, local_signature())
        assert cache.load_file(str(target), key) is not None
        cache.store_file(
            str(target),
            key,
            FileResult(violations=(), directives=(), parse_ok=True),
        )
        warm = lint_paths([str(tmp_path / "src")], cache_dir=cache_dir)
        assert warm.clean

    def test_edited_file_misses(self, tmp_path):
        target = write_bad_module(tmp_path)
        cache_dir = str(tmp_path / "cache")
        assert not lint_paths([str(tmp_path / "src")], cache_dir=cache_dir).clean
        target.write_text("def f(x: int) -> int:\n    return x\n")
        assert lint_paths([str(tmp_path / "src")], cache_dir=cache_dir).clean

    def test_no_cache_dir_still_works(self, tmp_path):
        write_bad_module(tmp_path)
        report = lint_paths([str(tmp_path / "src")], cache_dir=None)
        assert not report.clean


class TestVersionInvalidation:
    def test_rule_version_bump_changes_file_key(self):
        before = file_key(BAD_SOURCE, "ERR001:1")
        after = file_key(BAD_SOURCE, "ERR001:2")
        assert before != after

    def test_rule_version_bump_recomputes(self, tmp_path, monkeypatch):
        """The explicit satellite case: bumping ``version`` invalidates."""
        target = write_bad_module(tmp_path)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(tmp_path / "src")], cache_dir=cache_dir)

        # Plant an empty record under the *new* signature's key to prove
        # the old record is not consulted, then bump ERR001's version.
        rule = REGISTRY["ERR001"]
        bumped = dataclasses.replace(rule, version=rule.version + 1)
        monkeypatch.setitem(REGISTRY, "ERR001", bumped)
        new_key = file_key(BAD_SOURCE, local_signature())
        old_key = file_key(BAD_SOURCE, local_signature().replace(
            f"ERR001:{bumped.version}", f"ERR001:{rule.version}"
        ))
        assert new_key != old_key

        report = lint_paths([str(tmp_path / "src")], cache_dir=cache_dir)
        assert any(v.rule == "ERR001" for v in report.violations)
        # The recomputed result is stored under the new key.
        assert LintCache(cache_dir).load_file(str(target), new_key) is not None


class TestProgramKey:
    def test_any_file_hash_change_misses(self):
        base = [("a.py", "k1"), ("b.py", "k2")]
        assert program_key(base, "DET002:1") != program_key(
            [("a.py", "k1"), ("b.py", "k3")], "DET002:1"
        )

    def test_project_signature_part_of_key(self):
        base = [("a.py", "k1")]
        assert program_key(base, "DET002:1") != program_key(base, "DET002:2")

    def test_order_independent(self):
        assert program_key(
            [("a.py", "k1"), ("b.py", "k2")], "s"
        ) == program_key([("b.py", "k2"), ("a.py", "k1")], "s")


class TestRobustness:
    def test_corrupt_record_degrades_to_miss(self, tmp_path):
        target = write_bad_module(tmp_path)
        cache_dir = tmp_path / "cache"
        lint_paths([str(tmp_path / "src")], cache_dir=str(cache_dir))
        for record in (cache_dir / "files").iterdir():
            record.write_text("{not json")
        report = lint_paths([str(tmp_path / "src")], cache_dir=str(cache_dir))
        assert any(v.rule == "ERR001" for v in report.violations)
        assert target.exists()

    def test_mismatched_key_in_record_is_miss(self, tmp_path):
        target = write_bad_module(tmp_path)
        cache = LintCache(str(tmp_path / "cache"))
        cache.store_file(
            str(target),
            "stale-key",
            FileResult(violations=(), directives=(), parse_ok=True),
        )
        assert cache.load_file(str(target), "current-key") is None
