"""Autofixer: raise conversions, import removal, stale-directive cleanup."""

from repro.devtools.simlint import lint_paths
from repro.devtools.simlint.fixes import apply_fixes, fix_source
from repro.devtools.simlint.suppress import parse_suppressions


def raw_for(source: str, path: str = "src/repro/harness/x.py"):
    """Raw findings + suppressions for a snippet, via the real engine."""
    from repro.devtools.simlint.engine import scan_source

    result = scan_source(path, source)
    return list(result.violations), parse_suppressions(source)


class TestRaiseConversion:
    def test_builtin_raise_becomes_repro_error_with_import(self):
        source = (
            '"""Doc."""\n'
            "\n"
            "\n"
            "def f(x: int) -> None:\n"
            "    raise ValueError(f'bad {x}')\n"
        )
        raw, supp = raw_for(source)
        text, fixes = fix_source("x.py", source, raw, supp)
        assert "raise ReproError(f'bad {x}')" in text
        assert "from repro.errors import ReproError" in text
        # Import goes right after the docstring, before the def.
        assert text.index("ReproError") < text.index("def f")
        assert [f.rule for f in fixes] == ["ERR001"]

    def test_existing_repro_error_reference_skips_import(self):
        source = (
            "from repro.errors import ReproError\n"
            "\n"
            "\n"
            "def f(x: int) -> None:\n"
            "    if x:\n"
            "        raise ReproError('x')\n"
            "    raise KeyError(x)\n"
        )
        raw, supp = raw_for(source)
        text, _ = fix_source("x.py", source, raw, supp)
        assert text.count("from repro.errors import ReproError") == 1
        assert "KeyError" not in text

    def test_handler_findings_left_alone(self):
        source = (
            "def f() -> None:\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:\n"
            "        pass\n"
        )
        raw, supp = raw_for(source)
        assert any(v.rule == "ERR001" for v in raw)
        text, fixes = fix_source("x.py", source, raw, supp)
        assert text == source
        assert fixes == []

    def test_suppressed_finding_not_fixed(self):
        source = (
            "def f(x: int) -> None:\n"
            "    raise ValueError(x)  # simlint: ignore[ERR001] -- intentional\n"
        )
        raw, supp = raw_for(source)
        text, fixes = fix_source("x.py", source, raw, supp)
        assert "ValueError" in text
        assert fixes == []


class TestImportRemoval:
    def test_fully_dead_statement_deleted(self):
        source = "import os\nimport sys\n\nARGS = sys.argv\n"
        raw, supp = raw_for(source)
        text, fixes = fix_source("x.py", source, raw, supp)
        assert text == "import sys\n\nARGS = sys.argv\n"
        assert [f.rule for f in fixes] == ["IMP001"]

    def test_partially_dead_statement_rewritten(self):
        source = "from os import getcwd, sep\n\nHERE = getcwd()\n"
        raw, supp = raw_for(source)
        text, _ = fix_source("x.py", source, raw, supp)
        assert text.splitlines()[0] == "from os import getcwd"

    def test_aliased_import_removed_by_alias(self):
        source = "import json as j\nimport sys\n\nARGS = sys.argv\n"
        raw, supp = raw_for(source)
        text, fixes = fix_source("x.py", source, raw, supp)
        assert "json" not in text
        assert "j" in fixes[0].description


class TestStaleCleanup:
    def test_dead_directive_stripped_from_code_line(self):
        source = "def f(x: int) -> int:\n    return x  # simlint: ignore[ERR001] -- gone\n"
        report = _project_raw(source)
        text, fixes = fix_source(
            "src/repro/harness/x.py", source, report, parse_suppressions(source)
        )
        assert text == "def f(x: int) -> int:\n    return x\n"
        assert [f.rule for f in fixes] == ["STALE001"]

    def test_directive_only_line_deleted(self):
        source = "# simlint: ignore-file[TEL001] -- nothing here emits\nX = 1\n"
        report = _project_raw(source)
        text, _ = fix_source(
            "src/repro/harness/x.py", source, report, parse_suppressions(source)
        )
        assert text == "X = 1\n"

    def test_live_ids_survive_a_mixed_bracket(self):
        source = (
            "def f(x: int) -> None:\n"
            "    raise ValueError(x)  # simlint: ignore[ERR001, TEL001] -- why\n"
        )
        report = _project_raw(source)
        text, fixes = fix_source(
            "src/repro/harness/x.py", source, report, parse_suppressions(source)
        )
        assert "ignore[ERR001]" in text
        assert "TEL001" not in text
        assert "-- why" in text
        assert [f.rule for f in fixes] == ["STALE001"]

    def test_unflagged_directives_untouched(self):
        """No STALE001 finding (e.g. TEST-role file) means no edits."""
        source = "# simlint: ignore-file[ERR001] -- fixture\nX = 1\n"
        text, fixes = fix_source(
            "tests/fixtures/demo.py", source, [], parse_suppressions(source)
        )
        assert text == source
        assert fixes == []


def _project_raw(source: str, path: str = "src/repro/harness/x.py"):
    """Raw local + project findings, as apply_fixes assembles them."""
    from repro.devtools.simlint.engine import _project_pass, scan_source

    result = scan_source(path, source)
    raw = list(result.violations)
    supp = {path: parse_suppressions(source)}
    raw.extend(_project_pass({path: source}, {path: result}, supp))
    return raw


class TestApplyFixes:
    def test_end_to_end_rewrites_and_relints_clean(self, tmp_path):
        target = tmp_path / "src" / "repro" / "harness" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import os\n"
            "import sys\n"
            "\n"
            "\n"
            "def f(x: int) -> int:\n"
            "    if x < 0:\n"
            "        raise ValueError(x)\n"
            "    return len(sys.argv)  # simlint: ignore[TEL001] -- stale\n"
        )
        fixes = apply_fixes([str(tmp_path / "src")])
        assert {f.rule for f in fixes} == {"ERR001", "IMP001", "STALE001"}
        text = target.read_text()
        assert "import os\n" not in text
        assert "raise ReproError(x)" in text
        assert "simlint" not in text
        assert lint_paths([str(tmp_path / "src")]).clean

    def test_clean_tree_untouched(self, tmp_path):
        target = tmp_path / "src" / "repro" / "harness" / "ok.py"
        target.parent.mkdir(parents=True)
        before = "def f(x: int) -> int:\n    return x\n"
        target.write_text(before)
        assert apply_fixes([str(tmp_path / "src")]) == []
        assert target.read_text() == before

    def test_unparseable_file_left_alone(self, tmp_path):
        target = tmp_path / "src" / "repro" / "harness" / "broken.py"
        target.parent.mkdir(parents=True)
        before = "def f(:\n"
        target.write_text(before)
        assert apply_fixes([str(tmp_path / "src")]) == []
        assert target.read_text() == before
