"""Suppression parsing edge cases: malformed pragmas, scopes, fallbacks."""

from repro.devtools.simlint import ModuleRole, lint_source
from repro.devtools.simlint.model import Violation
from repro.devtools.simlint.suppress import from_directives, parse_suppressions


def violation(rule: str, line: int) -> Violation:
    return Violation(path="x.py", line=line, col=0, rule=rule, message="m")


class TestParsing:
    def test_line_and_file_scopes(self):
        source = (
            "# simlint: ignore-file[API001] -- header\n"
            "x = 1  # simlint: ignore[ERR001] -- local\n"
        )
        supp = parse_suppressions(source)
        assert supp.file_rules == frozenset({"API001"})
        assert supp.line_rules == {2: frozenset({"ERR001"})}
        assert [d.kind for d in supp.directives] == ["ignore-file", "ignore"]

    def test_comma_separated_rule_list(self):
        supp = parse_suppressions("x = 1  # simlint: ignore[ERR001, API001]\n")
        assert supp.line_rules == {1: frozenset({"ERR001", "API001"})}

    def test_two_directives_on_same_line_merge(self):
        supp = from_directives(
            (
                parse_suppressions("x = 1  # simlint: ignore[ERR001]\n").directives
                + parse_suppressions("x = 1  # simlint: ignore[API001]\n").directives
            )
        )
        assert supp.line_rules == {1: frozenset({"ERR001", "API001"})}

    def test_malformed_entries_recorded_not_honoured(self):
        supp = parse_suppressions("x = 1  # simlint: ignore[err001, ERR001]\n")
        (directive,) = supp.directives
        assert directive.rules == ("ERR001",)
        assert directive.malformed == ("err001",)
        assert supp.line_rules == {1: frozenset({"ERR001"})}

    def test_empty_brackets_keep_directive_but_silence_nothing(self):
        supp = parse_suppressions("x = 1  # simlint: ignore[]\n")
        assert len(supp.directives) == 1
        assert supp.file_rules == frozenset()
        assert supp.line_rules == {}

    def test_unknown_rule_id_still_parses(self):
        """Well-formed but unknown ids are kept — STALE001 owns the report."""
        supp = parse_suppressions("x = 1  # simlint: ignore[NOPE999]\n")
        assert supp.line_rules == {1: frozenset({"NOPE999"})}

    def test_docstring_example_is_inert(self):
        source = '"""Use ``# simlint: ignore[ERR001]`` to opt out."""\nx = 1\n'
        supp = parse_suppressions(source)
        assert supp.directives == ()

    def test_line_scan_fallback_on_unparseable_source(self):
        source = "def f(:\n    pass  # simlint: ignore[API001] -- note\n"
        supp = parse_suppressions(source)
        assert supp.line_rules == {2: frozenset({"API001"})}


class TestCovers:
    def test_file_scope_covers_any_line(self):
        supp = parse_suppressions("# simlint: ignore-file[ERR001]\n")
        assert supp.covers(violation("ERR001", 40))
        assert not supp.covers(violation("API001", 40))

    def test_line_scope_is_exact(self):
        supp = parse_suppressions("x = 1\ny = 2  # simlint: ignore[ERR001]\n")
        assert supp.covers(violation("ERR001", 2))
        assert not supp.covers(violation("ERR001", 1))
        assert not supp.covers(violation("ERR001", 3))

    def test_wildcard_in_either_scope(self):
        assert parse_suppressions("# simlint: ignore-file[*]\n").covers(
            violation("TEL001", 9)
        )
        assert parse_suppressions("x = 1  # simlint: ignore[*]\n").covers(
            violation("TEL001", 1)
        )

    def test_unsuppressable_rules_ignore_both_scopes(self):
        supp = parse_suppressions(
            "# simlint: ignore-file[*]\nx = 1  # simlint: ignore[*]\n"
        )
        assert not supp.covers(violation("PARSE001", 1))
        assert not supp.covers(violation("STALE001", 1))

    def test_file_and_line_precedence_is_union(self):
        """A rule silenced at either scope is silenced; scopes don't shadow."""
        supp = parse_suppressions(
            "# simlint: ignore-file[API001]\n"
            "x = 1  # simlint: ignore[ERR001]\n"
        )
        assert supp.covers(violation("API001", 2))
        assert supp.covers(violation("ERR001", 2))
        assert not supp.covers(violation("ERR001", 3))


class TestRoundTrip:
    def test_from_directives_rebuilds_equal_state(self):
        source = (
            "# simlint: ignore-file[API001, TEL001]\n"
            "x = 1  # simlint: ignore[ERR001]\n"
            "y = 2  # simlint: ignore[bogus]\n"
        )
        parsed = parse_suppressions(source)
        rebuilt = from_directives(parsed.directives)
        assert rebuilt == parsed


class TestEndToEnd:
    def test_suppressed_line_quiet_in_lint_source(self):
        source = (
            "def f(x: int) -> None:\n"
            "    raise ValueError(x)  # simlint: ignore[ERR001] -- demo\n"
        )
        assert (
            lint_source(source, "x.py", role=ModuleRole.LIB, select=["ERR001"]) == []
        )
