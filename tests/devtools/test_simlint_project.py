"""Whole-program rules: taint, lock order, purity, stale suppressions.

Each test builds a miniature source tree under ``tmp_path`` with real
``src/repro/...`` paths so role inference and module naming behave
exactly as on the real tree, then drives the full ``lint_paths``
pipeline (local pass, program model, project pass).
"""

from pathlib import Path

from repro.devtools.simlint import lint_paths


def make_tree(tmp_path: Path, files: dict) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


class TestDet002:
    def test_wall_clock_reachable_from_core(self, tmp_path):
        """The seeded acceptance case: time.time() behind one call hop."""
        tree = make_tree(
            tmp_path,
            {
                "src/repro/core/engine.py": (
                    "from repro.harness.helper import stamp\n"
                    "\n"
                    "\n"
                    "def step() -> int:\n"
                    "    return stamp()\n"
                ),
                "src/repro/harness/helper.py": (
                    "import time\n"
                    "\n"
                    "\n"
                    "def stamp() -> int:\n"
                    "    return int(time.time())\n"
                ),
            },
        )
        report = lint_paths([str(tree)], select=["DET002"])
        assert [(Path(v.path).name, v.line, v.rule) for v in report.violations] == [
            ("helper.py", 5, "DET002")
        ]
        message = report.violations[0].message
        assert "time.time()" in message
        assert "repro.core.engine.step -> repro.harness.helper.stamp" in message

    def test_unreachable_helper_not_flagged(self, tmp_path):
        tree = make_tree(
            tmp_path,
            {
                "src/repro/core/engine.py": "def step() -> int:\n    return 0\n",
                "src/repro/harness/helper.py": (
                    "import time\n"
                    "\n"
                    "\n"
                    "def stamp() -> int:\n"
                    "    return int(time.time())\n"
                ),
            },
        )
        assert lint_paths([str(tree)], select=["DET002"]).clean

    def test_sim_local_sources_left_to_det001(self, tmp_path):
        """Inside SIM files DET001 owns the finding; DET002 stays quiet."""
        tree = make_tree(
            tmp_path,
            {
                "src/repro/core/engine.py": (
                    "import time\n"
                    "\n"
                    "\n"
                    "def step() -> float:\n"
                    "    return time.time()\n"
                ),
            },
        )
        report = lint_paths([str(tree)])
        assert [v.rule for v in report.violations] == ["DET001"]

    def test_urandom_flagged_even_in_sim(self, tmp_path):
        tree = make_tree(
            tmp_path,
            {
                "src/repro/core/engine.py": (
                    "import os\n"
                    "\n"
                    "\n"
                    "def step() -> bytes:\n"
                    "    return os.urandom(4)\n"
                ),
            },
        )
        report = lint_paths([str(tree)], select=["DET002"])
        assert [v.rule for v in report.violations] == ["DET002"]
        assert "os.urandom()" in report.violations[0].message

    def test_telemetry_role_exempt(self, tmp_path):
        tree = make_tree(
            tmp_path,
            {
                "src/repro/core/engine.py": (
                    "from repro.telemetry.clock import now\n"
                    "\n"
                    "\n"
                    "def step() -> float:\n"
                    "    return now()\n"
                ),
                "src/repro/telemetry/clock.py": (
                    "import time\n"
                    "\n"
                    "\n"
                    "def now() -> float:\n"
                    "    return time.time()\n"
                ),
            },
        )
        assert lint_paths([str(tree)], select=["DET002"]).clean


class TestLock002:
    def test_inverted_nesting_flags_both_sites(self, tmp_path):
        tree = make_tree(
            tmp_path,
            {
                "src/repro/service/pair.py": (
                    "import threading\n"
                    "\n"
                    "\n"
                    "class Pair:\n"
                    "    def __init__(self) -> None:\n"
                    "        self._a = threading.Lock()\n"
                    "        self._b = threading.Lock()\n"
                    "\n"
                    "    def one(self) -> None:\n"
                    "        with self._a:\n"
                    "            with self._b:\n"
                    "                pass\n"
                    "\n"
                    "    def two(self) -> None:\n"
                    "        with self._b:\n"
                    "            with self._a:\n"
                    "                pass\n"
                ),
            },
        )
        report = lint_paths([str(tree)], select=["LOCK002"])
        assert [v.rule for v in report.violations] == ["LOCK002", "LOCK002"]
        assert {v.line for v in report.violations} == {11, 16}
        assert "deadlock" in report.violations[0].message

    def test_consistent_order_clean(self, tmp_path):
        tree = make_tree(
            tmp_path,
            {
                "src/repro/service/pair.py": (
                    "import threading\n"
                    "\n"
                    "\n"
                    "class Pair:\n"
                    "    def __init__(self) -> None:\n"
                    "        self._a = threading.Lock()\n"
                    "        self._b = threading.Lock()\n"
                    "\n"
                    "    def one(self) -> None:\n"
                    "        with self._a:\n"
                    "            with self._b:\n"
                    "                pass\n"
                    "\n"
                    "    def two(self) -> None:\n"
                    "        with self._a:\n"
                    "            with self._b:\n"
                    "                pass\n"
                ),
            },
        )
        assert lint_paths([str(tree)], select=["LOCK002"]).clean


class TestPure001:
    def test_impure_write_path_function_flagged(self, tmp_path):
        tree = make_tree(
            tmp_path,
            {
                "src/repro/core/engine.py": (
                    "from repro.telemetry.sink import record\n"
                    "\n"
                    "\n"
                    "def step(events: list) -> None:\n"
                    "    record(events)\n"
                ),
                "src/repro/telemetry/sink.py": (
                    "def record(events: list) -> None:\n"
                    "    events.append(1)\n"
                    "    print('recorded')\n"
                ),
            },
        )
        report = lint_paths([str(tree)], select=["PURE001"])
        assert [(v.line, v.rule) for v in report.violations] == [
            (2, "PURE001"),
            (3, "PURE001"),
        ]
        assert "caller-owned argument 'events'" in report.violations[0].message
        assert "print()" in report.violations[1].message

    def test_unreached_telemetry_function_not_audited(self, tmp_path):
        tree = make_tree(
            tmp_path,
            {
                "src/repro/core/engine.py": "def step() -> None:\n    return None\n",
                "src/repro/telemetry/sink.py": (
                    "def flush(events: list) -> None:\n"
                    "    print(len(events))\n"
                ),
            },
        )
        assert lint_paths([str(tree)], select=["PURE001"]).clean

    def test_own_state_mutation_allowed(self, tmp_path):
        tree = make_tree(
            tmp_path,
            {
                "src/repro/core/engine.py": (
                    "from repro.telemetry.sink import Counter\n"
                    "\n"
                    "\n"
                    "def step() -> None:\n"
                    "    Counter().inc(1)\n"
                ),
                "src/repro/telemetry/sink.py": (
                    "class Counter:\n"
                    "    def __init__(self) -> None:\n"
                    "        self.value = 0\n"
                    "        self.events: list = []\n"
                    "\n"
                    "    def inc(self, n: int) -> None:\n"
                    "        self.value += n\n"
                    "        self.events.append(n)\n"
                ),
            },
        )
        assert lint_paths([str(tree)], select=["PURE001"]).clean


class TestStale001:
    def test_stale_unknown_and_malformed_directives(self, tmp_path):
        tree = make_tree(
            tmp_path,
            {
                "src/repro/harness/clean.py": (
                    "# simlint: ignore-file[NOPE999] -- unknown rule id\n"
                    "\n"
                    "\n"
                    "def f(x: int) -> int:\n"
                    "    return x  # simlint: ignore[ERR001] -- nothing raised here\n"
                    "\n"
                    "\n"
                    "def g(x: int) -> int:\n"
                    "    return x  # simlint: ignore[err001] -- malformed id\n"
                ),
            },
        )
        report = lint_paths([str(tree)], select=["STALE001"])
        assert [(v.line, v.rule) for v in report.violations] == [
            (1, "STALE001"),
            (5, "STALE001"),
            (9, "STALE001"),
        ]
        messages = [v.message for v in report.violations]
        assert "unknown rule id 'NOPE999'" in messages[0]
        assert "no ERR001 finding in this line" in messages[1]
        assert "'err001' is not a rule id" in messages[2]

    def test_genuine_suppression_not_flagged(self, tmp_path):
        tree = make_tree(
            tmp_path,
            {
                "src/repro/harness/used.py": (
                    "def f(x: int) -> None:\n"
                    "    raise ValueError(x)  # simlint: ignore[ERR001] -- demo\n"
                ),
            },
        )
        assert lint_paths([str(tree)]).clean

    def test_stale_finding_cannot_be_suppressed(self, tmp_path):
        tree = make_tree(
            tmp_path,
            {
                "src/repro/harness/meta.py": (
                    "# simlint: ignore-file[*] -- blanket, but nothing to silence\n"
                    "X = 1\n"
                ),
            },
        )
        report = lint_paths([str(tree)])
        assert [v.rule for v in report.violations] == ["STALE001"]

    def test_test_role_directives_exempt(self, tmp_path):
        tree = make_tree(
            tmp_path,
            {
                "tests/fixtures/demo.py": (
                    "# simlint: ignore-file[ERR001] -- fixture directive\n"
                    "X = 1\n"
                ),
            },
        )
        assert lint_paths([str(tree)], select=["STALE001"]).clean

    def test_project_findings_count_for_wildcard(self, tmp_path):
        """A '*' on a line with only a project-rule finding is live."""
        tree = make_tree(
            tmp_path,
            {
                "src/repro/core/engine.py": (
                    "from repro.harness.helper import stamp\n"
                    "\n"
                    "\n"
                    "def step() -> int:\n"
                    "    return stamp()\n"
                ),
                "src/repro/harness/helper.py": (
                    "import time\n"
                    "\n"
                    "\n"
                    "def stamp() -> int:\n"
                    "    return int(time.time())  # simlint: ignore[*] -- ok\n"
                ),
            },
        )
        assert lint_paths([str(tree)]).clean
