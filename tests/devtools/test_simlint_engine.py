"""Engine-level tests: roles, suppressions, selection, report schema."""

from pathlib import Path

import pytest

from repro.devtools.simlint import (
    PARSE_RULE_ID,
    LintError,
    ModuleRole,
    infer_role,
    lint_file,
    lint_paths,
    lint_source,
)

FIXTURES = Path(__file__).parent / "fixtures"


class TestRoleInference:
    @pytest.mark.parametrize(
        ("path", "role"),
        [
            ("src/repro/core/bht.py", ModuleRole.SIM),
            ("src/repro/pipeline/core.py", ModuleRole.SIM),
            ("src/repro/predictors/tage.py", ModuleRole.SIM),
            ("src/repro/telemetry/registry.py", ModuleRole.TELEMETRY),
            ("src/repro/cli.py", ModuleRole.CLI),
            ("src/repro/service/server.py", ModuleRole.SERVICE),
            ("src/repro/service/api.py", ModuleRole.SERVICE),
            ("src/repro/harness/runner.py", ModuleRole.LIB),
            ("src/repro/devtools/simlint/engine.py", ModuleRole.LIB),
            ("tests/core/test_bht.py", ModuleRole.TEST),
            ("benchmarks/bench_tab01_workloads.py", ModuleRole.TEST),
            ("tools/regression.py", ModuleRole.TOOL),
            ("examples/quickstart.py", ModuleRole.TOOL),
            ("setup.py", ModuleRole.TOOL),
            ("somewhere/else.py", ModuleRole.UNKNOWN),
        ],
    )
    def test_paths(self, path, role):
        assert infer_role(path) is role

    def test_absolute_paths_classify_the_same(self):
        assert infer_role("/root/repo/src/repro/core/bht.py") is ModuleRole.SIM


class TestSuppressions:
    def test_line_and_file_directives(self):
        found = lint_file(str(FIXTURES / "suppressed.py"), role=ModuleRole.LIB)
        assert [(v.rule, v.line) for v in found] == [("ERR001", 13)]

    def test_no_suppress_reports_everything(self):
        found = lint_file(
            str(FIXTURES / "suppressed.py"),
            role=ModuleRole.LIB,
            respect_suppressions=False,
        )
        rules = sorted({v.rule for v in found})
        assert rules == ["API001", "ERR001"]
        assert len([v for v in found if v.rule == "ERR001"]) == 2

    def test_wildcard_suppresses_all_rules(self):
        source = (
            "# simlint: ignore-file[*] -- generated file\n"
            "def f(x):\n"
            "    raise ValueError(x)\n"
        )
        assert lint_source(source, "x.py", role=ModuleRole.LIB) == []


class TestSelection:
    def test_select_limits_rules(self):
        found = lint_file(
            str(FIXTURES / "err001.py"), role=ModuleRole.LIB, select=["API001"]
        )
        assert found and all(v.rule == "API001" for v in found)

    def test_unknown_rule_id_raises(self):
        with pytest.raises(LintError, match="unknown rule"):
            lint_source("x = 1\n", "x.py", select=["NOPE999"])


class TestParseErrors:
    def test_syntax_error_becomes_violation(self):
        found = lint_source("def f(:\n", "broken.py")
        assert [v.rule for v in found] == [PARSE_RULE_ID]

    def test_parse_rule_cannot_be_suppressed(self):
        source = "# simlint: ignore-file[*]\ndef f(:\n"
        assert [v.rule for v in lint_source(source, "broken.py")] == [PARSE_RULE_ID]


class TestReport:
    def test_json_schema(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(x):\n    raise ValueError(x)\n")
        report = lint_paths([str(tmp_path)])
        payload = report.as_dict()
        assert payload["version"] == 2
        assert payload["files"] == 1
        assert set(payload["counts"]) == {"API001", "ERR001"}
        for violation in payload["violations"]:
            assert set(violation) == {"path", "line", "col", "rule", "message"}
        assert not report.clean

    def test_missing_path_raises(self):
        with pytest.raises(LintError, match="no such file"):
            lint_paths(["does/not/exist"])

    def test_violations_sorted_and_counted(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "def b(x):\n    raise ValueError(x)\n\n\ndef a(y):\n    return y\n"
        )
        report = lint_paths([str(tmp_path)])
        lines = [v.line for v in report.violations]
        assert lines == sorted(lines)
        assert report.counts() == {"API001": 2, "ERR001": 1}
