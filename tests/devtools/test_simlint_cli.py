"""CLI contract tests: exit codes, output formats, repro integration."""

import dataclasses
import json

import pytest

from repro.cli import main as repro_main
from repro.devtools.simlint.cli import (
    EXIT_CLEAN,
    EXIT_INTERNAL,
    EXIT_VIOLATIONS,
    main as simlint_main,
)
from repro.devtools.simlint.model import REGISTRY


@pytest.fixture
def dirty_tree(tmp_path):
    """A fake source tree with one ERR001 violation in a sim module."""
    bad = tmp_path / "src" / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(x: int) -> None:\n    raise ValueError(x)\n")
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("X = 1\n")
        assert simlint_main([str(tmp_path)]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, dirty_tree, capsys):
        assert simlint_main([str(dirty_tree)]) == EXIT_VIOLATIONS
        assert "ERR001" in capsys.readouterr().out

    def test_unparseable_file_exits_one(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert simlint_main([str(tmp_path)]) == EXIT_VIOLATIONS
        assert "PARSE001" in capsys.readouterr().out

    def test_no_paths_exits_two(self, capsys):
        assert simlint_main([]) == EXIT_INTERNAL
        assert "no paths" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert simlint_main(["--select", "NOPE999", str(tmp_path)]) == EXIT_INTERNAL
        assert "unknown rule" in capsys.readouterr().err

    def test_checker_crash_exits_two(self, dirty_tree, capsys, monkeypatch):
        def boom(ctx):
            raise RuntimeError("checker exploded")
            yield  # pragma: no cover - keeps this a generator like real checkers

        broken = dataclasses.replace(REGISTRY["ERR001"], check=boom)
        monkeypatch.setitem(REGISTRY, "ERR001", broken)
        assert simlint_main([str(dirty_tree)]) == EXIT_INTERNAL
        assert "internal error" in capsys.readouterr().err


class TestOutput:
    def test_json_format(self, dirty_tree, capsys):
        assert simlint_main(["--format", "json", str(dirty_tree)]) == EXIT_VIOLATIONS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["counts"] == {"ERR001": 1}
        assert payload["violations"][0]["rule"] == "ERR001"

    def test_select_filter(self, dirty_tree, capsys):
        assert (
            simlint_main(["--select", "API001", str(dirty_tree)]) == EXIT_CLEAN
        )

    def test_list_rules(self, capsys):
        assert simlint_main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ("API001", "DET001", "ERR001", "SPEC001", "TEL001"):
            assert rule_id in out


class TestReproIntegration:
    def test_repro_lint_subcommand(self, dirty_tree, capsys):
        assert repro_main(["lint", str(dirty_tree)]) == EXIT_VIOLATIONS
        assert "ERR001" in capsys.readouterr().out

    def test_repro_lint_list_rules(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == EXIT_CLEAN
        assert "DET001" in capsys.readouterr().out
