"""CLI contract tests: exit codes, output formats, repro integration."""

import dataclasses
import json

import pytest

from repro.cli import main as repro_main
from repro.devtools.simlint.cli import (
    EXIT_CLEAN,
    EXIT_INTERNAL,
    EXIT_VIOLATIONS,
    main as simlint_main,
)
from repro.devtools.simlint.model import REGISTRY


@pytest.fixture
def dirty_tree(tmp_path):
    """A fake source tree with one ERR001 violation in a sim module."""
    bad = tmp_path / "src" / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(x: int) -> None:\n    raise ValueError(x)\n")
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("X = 1\n")
        assert simlint_main([str(tmp_path)]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, dirty_tree, capsys):
        assert simlint_main([str(dirty_tree)]) == EXIT_VIOLATIONS
        assert "ERR001" in capsys.readouterr().out

    def test_unparseable_file_exits_one(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert simlint_main([str(tmp_path)]) == EXIT_VIOLATIONS
        assert "PARSE001" in capsys.readouterr().out

    def test_no_paths_exits_two(self, capsys):
        assert simlint_main([]) == EXIT_INTERNAL
        assert "no paths" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert simlint_main(["--select", "NOPE999", str(tmp_path)]) == EXIT_INTERNAL
        assert "unknown rule" in capsys.readouterr().err

    def test_checker_crash_exits_two(self, dirty_tree, capsys, monkeypatch):
        def boom(ctx):
            raise RuntimeError("checker exploded")
            yield  # pragma: no cover - keeps this a generator like real checkers

        broken = dataclasses.replace(REGISTRY["ERR001"], check=boom)
        monkeypatch.setitem(REGISTRY, "ERR001", broken)
        assert simlint_main([str(dirty_tree)]) == EXIT_INTERNAL
        assert "internal error" in capsys.readouterr().err


class TestOutput:
    def test_json_format(self, dirty_tree, capsys):
        assert simlint_main(["--format", "json", str(dirty_tree)]) == EXIT_VIOLATIONS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["counts"] == {"ERR001": 1}
        assert payload["violations"][0]["rule"] == "ERR001"

    def test_select_filter(self, dirty_tree, capsys):
        assert (
            simlint_main(["--select", "API001", str(dirty_tree)]) == EXIT_CLEAN
        )

    def test_list_rules(self, capsys):
        assert simlint_main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in (
            "API001",
            "DET001",
            "DET002",
            "ERR001",
            "IMP001",
            "LOCK001",
            "LOCK002",
            "PURE001",
            "SPEC001",
            "STALE001",
            "TEL001",
        ):
            assert rule_id in out
        # Kind and version are part of the listing.
        assert "project" in out and "local" in out and "v1" in out

    def test_sarif_format(self, dirty_tree, capsys):
        assert simlint_main(["--format", "sarif", str(dirty_tree)]) == EXIT_VIOLATIONS
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["ERR001"]


class TestCliCacheAndBaseline:
    def test_warm_cache_run_agrees(self, dirty_tree, capsys):
        cache = str(dirty_tree / ".cache")
        args = ["--cache-dir", cache, str(dirty_tree)]
        assert simlint_main(args) == EXIT_VIOLATIONS
        cold = capsys.readouterr().out
        assert simlint_main(args) == EXIT_VIOLATIONS
        assert capsys.readouterr().out == cold

    def test_update_baseline_then_gate_clean(self, dirty_tree, capsys):
        baseline = str(dirty_tree / "baseline.json")
        assert (
            simlint_main(
                ["--baseline", baseline, "--update-baseline", str(dirty_tree)]
            )
            == EXIT_CLEAN
        )
        capsys.readouterr()
        assert simlint_main(["--baseline", baseline, str(dirty_tree)]) == EXIT_CLEAN
        assert "waived by baseline" in capsys.readouterr().out

    def test_no_baseline_flag_ignores_it(self, dirty_tree, capsys):
        baseline = str(dirty_tree / "baseline.json")
        simlint_main(["--baseline", baseline, "--update-baseline", str(dirty_tree)])
        capsys.readouterr()
        assert (
            simlint_main(
                ["--baseline", baseline, "--no-baseline", str(dirty_tree)]
            )
            == EXIT_VIOLATIONS
        )

    def test_missing_default_baseline_is_fine(self, dirty_tree):
        # No .simlint-baseline.json in the scratch cwd: plain run works.
        assert simlint_main([str(dirty_tree)]) == EXIT_VIOLATIONS


class TestCliFix:
    def test_fix_rewrites_and_reports(self, dirty_tree, capsys):
        bad = dirty_tree / "src" / "repro" / "core" / "bad.py"
        assert simlint_main(["--fix", str(dirty_tree)]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "raise ValueError -> raise ReproError" in out
        assert "ReproError" in bad.read_text()

    def test_repro_lint_fix(self, dirty_tree, capsys):
        assert repro_main(["lint", "--fix", str(dirty_tree)]) == EXIT_CLEAN
        assert "ERR001" in capsys.readouterr().out


class TestReproIntegration:
    def test_repro_lint_subcommand(self, dirty_tree, capsys):
        assert repro_main(["lint", str(dirty_tree)]) == EXIT_VIOLATIONS
        assert "ERR001" in capsys.readouterr().out

    def test_repro_lint_list_rules(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == EXIT_CLEAN
        assert "DET001" in capsys.readouterr().out
