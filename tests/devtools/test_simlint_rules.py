"""Per-rule tests: each fixture file demonstrates its rule firing.

Fixtures live under ``tests/devtools/fixtures`` and are linted with a
*forced* module role, exactly as documented in the fixtures README —
their on-disk role (test code) exempts them from the simulator rules,
which is what keeps ``repro lint tests`` clean.
"""

from pathlib import Path

from repro.devtools.simlint import ModuleRole, lint_file, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def fixture_violations(name: str, role: ModuleRole, rule: str) -> list:
    found = lint_file(str(FIXTURES / name), role=role, select=[rule])
    assert all(v.rule == rule for v in found)
    return found


class TestDet001:
    def test_fixture_lines(self):
        found = fixture_violations("det001.py", ModuleRole.SIM, "DET001")
        assert [v.line for v in found] == [9, 13, 17, 18, 19, 25, 27, 31]

    def test_each_source_kind_reported(self):
        messages = " ".join(
            v.message
            for v in fixture_violations("det001.py", ModuleRole.SIM, "DET001")
        )
        for needle in ("random", "wall-clock", "environment", "set", "hash"):
            assert needle in messages

    def test_not_applied_outside_simulation_modules(self):
        source = "import time\n\n\ndef f() -> float:\n    return time.time()\n"
        for role in (ModuleRole.LIB, ModuleRole.TELEMETRY, ModuleRole.TEST):
            assert lint_source(source, "x.py", role=role, select=["DET001"]) == []
        assert lint_source(source, "x.py", role=ModuleRole.SIM, select=["DET001"])


class TestSpec001:
    def test_fixture_lines(self):
        found = fixture_violations("spec001.py", ModuleRole.SIM, "SPEC001")
        assert [v.line for v in found] == [5, 6, 7]

    def test_trusted_directories_exempt(self):
        source = "def f(unit, slot: int) -> None:\n    unit.bht._state[slot] = 0\n"
        for trusted in ("src/repro/core/x.py", "src/repro/predictors/x.py"):
            assert lint_source(source, trusted, select=["SPEC001"]) == []
        assert lint_source(
            source, "src/repro/pipeline/x.py", select=["SPEC001"]
        )


class TestGen001:
    def test_fixture_lines(self):
        found = fixture_violations("gen001.py", ModuleRole.SIM, "GEN001")
        assert [v.line for v in found] == [9, 14, 15, 16]

    def test_parse_eval_exec_compile_reported(self):
        messages = " ".join(
            v.message
            for v in fixture_violations("gen001.py", ModuleRole.SIM, "GEN001")
        )
        for needle in ("does not parse", "eval()", "exec()", "compile()"):
            assert needle in messages

    def test_clean_template_and_non_template_strings_ignored(self):
        source = (
            'STEP_TEMPLATE = """\n'
            "def step(records):\n"
            "    return len(records)\n"
            '"""\n'
            "other = \"def f():\\n    return eval('1')\\n\"\n"
        )
        assert lint_source(source, "x.py", role=ModuleRole.SIM, select=["GEN001"]) == []

    def test_real_templates_pass(self):
        specialize = (
            Path(__file__).parents[2] / "src" / "repro" / "pipeline" / "specialize.py"
        )
        found = lint_file(str(specialize), role=ModuleRole.SIM, select=["GEN001"])
        assert found == []

    def test_det001_scans_template_bodies(self):
        found = fixture_violations("gen001.py", ModuleRole.SIM, "DET001")
        assert [v.line for v in found] == [25, 26]
        assert all("TAINTED_STEP_TEMPLATE" in v.message for v in found)

    def test_spec001_scans_template_bodies(self):
        found = fixture_violations("gen001.py", ModuleRole.SIM, "SPEC001")
        assert [v.line for v in found] == [27]
        assert "in codegen template" in found[0].message

    def test_spec001_template_scan_respects_trusted_prefixes(self):
        source = (
            'STEP_TEMPLATE = """\n'
            "def step(unit):\n"
            "    unit.bht._state[0] = 1\n"
            '"""\n'
        )
        assert lint_source(
            source, "src/repro/core/x.py", select=["SPEC001"]
        ) == []
        assert lint_source(
            source, "src/repro/pipeline/x.py", select=["SPEC001"]
        )


class TestTel001:
    def test_fixture_lines(self):
        found = fixture_violations("tel001.py", ModuleRole.SIM, "TEL001")
        assert {v.line for v in found} == {5, 6, 7, 12, 13}

    def test_plain_emit_is_clean(self):
        source = (
            "def f(tel, n: int) -> None:\n"
            "    if tel.enabled:\n"
            "        tel.registry.counter('bht.writes').inc(n)\n"
        )
        assert lint_source(source, "x.py", role=ModuleRole.SIM, select=["TEL001"]) == []


class TestErr001:
    def test_fixture_lines(self):
        found = fixture_violations("err001.py", ModuleRole.LIB, "ERR001")
        assert [v.line for v in found] == [8, 14, 18]

    def test_system_exit_allowed_only_in_cli_and_tools(self):
        source = "def f() -> None:\n    raise SystemExit(2)\n"
        for role in (ModuleRole.CLI, ModuleRole.TOOL):
            assert lint_source(source, "x.py", role=role, select=["ERR001"]) == []
        assert lint_source(source, "x.py", role=ModuleRole.SIM, select=["ERR001"])


class TestLock001:
    def test_fixture_lines(self):
        found = fixture_violations("lock001.py", ModuleRole.SERVICE, "LOCK001")
        assert [v.line for v in found] == [24, 27, 28]

    def test_read_and_write_both_reported(self):
        found = fixture_violations("lock001.py", ModuleRole.SERVICE, "LOCK001")
        kinds = [v.message.split(" ", 2)[1] for v in found]
        assert kinds == ["read", "write", "write"]

    def test_class_without_lock_attribute_not_analysed(self):
        source = (
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self._jobs = {}\n"
            "\n"
            "    def get(self, key):\n"
            "        return self._jobs.get(key)\n"
        )
        assert (
            lint_source(source, "x.py", role=ModuleRole.SERVICE, select=["LOCK001"])
            == []
        )

    def test_locked_suffix_methods_are_trusted(self):
        source = (
            "import threading\n"
            "\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._jobs = {}\n"
            "\n"
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._jobs[k] = v\n"
            "\n"
            "    def evict_locked(self, k):\n"
            "        self._jobs.pop(k, None)\n"
        )
        assert (
            lint_source(source, "x.py", role=ModuleRole.SERVICE, select=["LOCK001"])
            == []
        )


class TestImp001:
    def test_unused_import_flagged(self):
        source = "import os\nimport sys\n\nARGS = sys.argv\n"
        found = lint_source(source, "x.py", role=ModuleRole.LIB, select=["IMP001"])
        assert [(v.line, v.rule) for v in found] == [(1, "IMP001")]
        assert "'os'" in found[0].message

    def test_string_reference_counts_as_use(self):
        source = 'import os\n\n__all__ = ["os"]\n'
        assert lint_source(source, "x.py", role=ModuleRole.LIB, select=["IMP001"]) == []

    def test_init_files_exempt(self):
        source = "from os import path\n"
        assert (
            lint_source(
                source, "src/repro/x/__init__.py", role=ModuleRole.LIB, select=["IMP001"]
            )
            == []
        )


class TestApi001:
    def test_fixture_lines(self):
        found = fixture_violations("api001.py", ModuleRole.LIB, "API001")
        assert [v.line for v in found] == [4, 13, 16]

    def test_message_names_missing_pieces(self):
        found = fixture_violations("api001.py", ModuleRole.LIB, "API001")
        assert "parameter 'trace'" in found[0].message
        assert "return type" in found[0].message
