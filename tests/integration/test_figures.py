"""Smoke tests for the figure-reproduction harness.

Each experiment runs at a very small custom scale — these verify the
plumbing (sweeps, pairing, rendering), not the statistical shapes (the
benchmarks do that at real scales).
"""

import pytest

from repro.errors import ExperimentError
from repro.harness.figures import EXPERIMENTS, run_experiment
from repro.harness.scale import Scale

TEST_SCALE = Scale(name="test", branches_per_workload=1500, workloads_per_category=1)


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    # Keep the figure sweeps in-process for coverage and determinism.
    monkeypatch.setenv("REPRO_WORKERS", "4")


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        assert set(EXPERIMENTS) == {
            "fig4",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "tab1",
            "tab2",
            "tab3",
        }

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99", TEST_SCALE)


class TestCheapFigures:
    def test_tab1(self):
        figure = run_experiment("tab1", TEST_SCALE)
        assert figure.data["total"] == 202
        assert "server" in figure.render()

    def test_tab2(self):
        figure = run_experiment("tab2", TEST_SCALE)
        assert figure.data["rob_entries"] == 224
        assert "DDR4" in figure.render()

    def test_fig8(self):
        figure = run_experiment("fig8", TEST_SCALE)
        assert figure.data["suite_mean"] >= 0.0
        assert len(figure.data["per_workload"]) == 7

    def test_fig9(self):
        figure = run_experiment("fig9", TEST_SCALE)
        assert "retained" in figure.data
        text = figure.render()
        assert "retire-update" in text and "no-repair" in text

    def test_fig11(self):
        figure = run_experiment("fig11", TEST_SCALE)
        retained = figure.data["retained"]
        assert set(retained) == {
            "forward-64-4-4",
            "forward-64-4-2",
            "forward-32-4-4",
            "forward-32-4-2",
            "forward-32-4-2-coalesce",
        }

    def test_fig13(self):
        figure = run_experiment("fig13", TEST_SCALE)
        assert "limited-2pc" in figure.data["retained"]
        assert "limited-8pc-sq32" in figure.data["retained"]
