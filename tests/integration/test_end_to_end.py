"""End-to-end integration tests: full systems on synthetic workloads.

These run the real pipeline with real predictors at small trace sizes
and assert the paper's qualitative claims hold — the same shapes the
benchmarks verify at larger scales.
"""

import pytest

from repro.core import (
    LoopPredictor,
    LoopPredictorConfig,
    RepairPortConfig,
    StandardLocalUnit,
)
from repro.core.repair import (
    BackwardWalkRepair,
    ForwardWalkRepair,
    MultiStageUnit,
    NoRepair,
    PerfectRepair,
)
from repro.memory import CacheHierarchy
from repro.pipeline import PipelineConfig, PipelineModel
from repro.predictors import TagePredictor
from repro.workloads import WorkloadParams, WorkloadSpec, generate_trace

N_BRANCHES = 6000


@pytest.fixture(scope="module")
def loopy_trace():
    """A strongly local-predictable workload."""
    spec = WorkloadSpec(
        name="int-loopy",
        category="test",
        seed=99,
        params=WorkloadParams(
            n_loops=6,
            n_tight_loops=4,
            n_forward_loops=3,
            n_patterns=4,
            n_biased=4,
            n_global=2,
            trip_min=8,
            trip_max=30,
            trip_entropy=0.02,
            loop_region_weight=0.85,
            working_set_kb=128,
            load_prob=0.15,
        ),
    )
    return generate_trace(spec, N_BRANCHES)


def run(trace, unit=None, config=None):
    model = PipelineModel(
        TagePredictor(),
        unit=unit,
        config=config if config is not None else PipelineConfig(),
        hierarchy=CacheHierarchy(),
    )
    return model.run(trace)


def loop_unit(scheme):
    return StandardLocalUnit(LoopPredictor(LoopPredictorConfig.entries(128)), scheme)


@pytest.fixture(scope="module")
def baseline(loopy_trace):
    return run(loopy_trace)


class TestPaperClaims:
    def test_perfect_repair_reduces_mpki_substantially(self, loopy_trace, baseline):
        stats = run(loopy_trace, loop_unit(PerfectRepair()))
        reduction = (baseline.mpki - stats.mpki) / baseline.mpki
        assert reduction > 0.15

    def test_perfect_repair_improves_ipc(self, loopy_trace, baseline):
        stats = run(loopy_trace, loop_unit(PerfectRepair()))
        assert stats.ipc > baseline.ipc

    def test_no_repair_forfeits_the_gains(self, loopy_trace, baseline):
        perfect = run(loopy_trace, loop_unit(PerfectRepair()))
        none = run(loopy_trace, loop_unit(NoRepair()))
        perfect_gain = perfect.ipc / baseline.ipc - 1
        none_gain = none.ipc / baseline.ipc - 1
        assert none_gain < perfect_gain * 0.5

    def test_forward_beats_backward(self, loopy_trace, baseline):
        forward = run(
            loopy_trace, loop_unit(ForwardWalkRepair(RepairPortConfig(32, 4, 2)))
        )
        backward = run(
            loopy_trace, loop_unit(BackwardWalkRepair(RepairPortConfig(32, 4, 4)))
        )
        assert forward.mpki <= backward.mpki * 1.05

    def test_forward_close_to_perfect(self, loopy_trace, baseline):
        perfect = run(loopy_trace, loop_unit(PerfectRepair()))
        forward = run(
            loopy_trace,
            loop_unit(ForwardWalkRepair(RepairPortConfig(64, 4, 2), coalesce=True)),
        )
        perfect_red = baseline.mpki - perfect.mpki
        forward_red = baseline.mpki - forward.mpki
        assert forward_red > perfect_red * 0.5

    def test_multistage_positive(self, loopy_trace, baseline):
        stats = run(loopy_trace, MultiStageUnit())
        assert stats.mpki < baseline.mpki

    def test_repair_demand_is_multiple_pcs(self, loopy_trace):
        stats = run(loopy_trace, loop_unit(PerfectRepair()))
        repair = stats.extra["repair"]
        assert repair["mean_writes_per_event"] > 1.0
        assert repair["max_writes_per_event"] >= 4


class TestRobustness:
    def test_determinism_across_runs(self, loopy_trace):
        first = run(loopy_trace, loop_unit(PerfectRepair()))
        second = run(loopy_trace, loop_unit(PerfectRepair()))
        assert first.cycles == second.cycles
        assert first.mispredictions == second.mispredictions

    def test_wrong_path_off_shrinks_the_gap(self, loopy_trace, baseline):
        """Wrong-path pollution is the dominant corruption source.

        Without it, the only unrepaired state under no-repair is the
        mispredicting branch's own update, so the perfect-vs-none gap
        shrinks markedly (it does not close: the own-update error
        remains).
        """
        config = PipelineConfig(wrong_path=False)
        perfect_on = run(loopy_trace, loop_unit(PerfectRepair()))
        none_on = run(loopy_trace, loop_unit(NoRepair()))
        perfect_off = run(loopy_trace, loop_unit(PerfectRepair()), config)
        none_off = run(loopy_trace, loop_unit(NoRepair()), config)
        gap_on = none_on.mpki - perfect_on.mpki
        gap_off = none_off.mpki - perfect_off.mpki
        assert gap_off < gap_on

    def test_small_bht_thrashes_on_big_footprint(self):
        spec = WorkloadSpec(
            name="int-wide",
            category="test",
            seed=17,
            params=WorkloadParams().scaled_footprint(5.0),
        )
        trace = generate_trace(spec, N_BRANCHES)
        base = run(trace)
        small = run(
            trace,
            StandardLocalUnit(
                LoopPredictor(LoopPredictorConfig.entries(64)), PerfectRepair()
            ),
        )
        large = run(
            trace,
            StandardLocalUnit(
                LoopPredictor(LoopPredictorConfig.entries(256)), PerfectRepair()
            ),
        )
        base_red = lambda s: (base.mpki - s.mpki) / base.mpki
        assert base_red(large) >= base_red(small) - 0.02
