"""End-to-end: repair schemes on the *generic* local predictor.

Substantiates the paper's extensibility claim (§1): the repair schemes
only move opaque state, so swapping the loop predictor for a Yeh-Patt
pattern predictor must preserve the qualitative ordering.
"""

import pytest

from repro.core import (
    RepairPortConfig,
    StandardLocalUnit,
    TwoLevelLocalConfig,
    TwoLevelLocalPredictor,
)
from repro.core.repair import ForwardWalkRepair, NoRepair, PerfectRepair
from repro.pipeline import PipelineModel
from repro.predictors import TagePredictor
from repro.workloads import WorkloadParams, WorkloadSpec, generate_trace


@pytest.fixture(scope="module")
def pattern_trace():
    """Multi-flip-pattern-heavy workload: the generic predictor's turf."""
    spec = WorkloadSpec(
        name="int-patterns",
        category="test",
        seed=31,
        params=WorkloadParams(
            n_loops=2,
            n_tight_loops=1,
            n_forward_loops=2,
            n_patterns=14,
            n_biased=3,
            n_global=2,
            pattern_min=3,
            pattern_max=6,
            pattern_single_flip=0.0,  # all multi-flip
            pattern_noise=0.0,
            loop_region_weight=0.35,
            working_set_kb=64,
            load_prob=0.1,
        ),
    )
    return generate_trace(spec, 6000)


def run(trace, scheme=None):
    unit = None
    if scheme is not None:
        unit = StandardLocalUnit(
            TwoLevelLocalPredictor(TwoLevelLocalConfig(bht_entries=128)), scheme
        )
    return PipelineModel(TagePredictor(), unit=unit).run(trace)


class TestGenericLocalEndToEnd:
    def test_ordering_holds(self, pattern_trace):
        base = run(pattern_trace)
        perfect = run(pattern_trace, PerfectRepair())
        forward = run(pattern_trace, ForwardWalkRepair(RepairPortConfig(32, 4, 2)))
        none = run(pattern_trace, NoRepair())
        # Perfect repair is at least as good as the others, no-repair
        # is the worst of the repairing configurations.
        assert perfect.mpki <= forward.mpki + 0.3
        assert perfect.mpki <= none.mpki + 0.3
        assert base.mpki >= perfect.mpki - 0.3

    def test_runs_are_deterministic(self, pattern_trace):
        first = run(pattern_trace, PerfectRepair())
        second = run(pattern_trace, PerfectRepair())
        assert first.mispredictions == second.mispredictions
        assert first.cycles == second.cycles
