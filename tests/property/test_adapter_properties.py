"""Property tests: adapter → RPTR → loads_trace → columnar round trips.

The randomised streams are *consistent* in the sense real traces are
(an instruction stream's next ip is a taken branch's target), which is
exactly what the ChampSim writer emits; expectations mirror the two
documented normalisations — not-taken targets are backfilled from taken
sightings of the same static branch, and BT9 drops load information.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.adapters import convert_bytes, write_bt9, write_champsim
from repro.trace.columns import ColumnarTrace
from repro.trace.io import dumps_trace, loads_trace
from repro.trace.records import BranchKind, BranchRecord
from repro.trace.stats import collect_stats

# Draw structured (site, direction, gap, load) tuples and materialise
# them into records below — keeps every stream consistent while still
# randomising control flow, gaps, biases, and memory behaviour.
_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),      # static site index
        st.booleans(),                               # direction
        st.integers(min_value=0, max_value=6),       # gap
        st.booleans(),                               # carries a load
    ),
    min_size=1,
    max_size=80,
)

_SITE_KINDS = (
    BranchKind.COND, BranchKind.COND, BranchKind.COND, BranchKind.COND,
    BranchKind.UNCOND, BranchKind.CALL, BranchKind.RET, BranchKind.INDIRECT,
)


def build_records(stream, with_loads):
    """Materialise a drawn stream into *consistent* BranchRecords.

    Consistency constraint of any real committed trace: when a taken
    branch is followed by another branch with zero gap, the next branch
    *is* the taken target — the trace recorded execution arriving
    there.  The generator honours it so the ChampSim writer (which
    emits the instruction stream) reproduces every target exactly.
    """
    records = []
    for index, (site, taken, gap, load) in enumerate(stream):
        kind = _SITE_KINDS[site]
        if kind is not BranchKind.COND:
            taken = True
        pc = 0x40_0000 + site * 0x100
        if taken and index + 1 < len(stream) and stream[index + 1][2] == 0:
            target = 0x40_0000 + stream[index + 1][0] * 0x100
        else:
            target = pc + 0x40
        load_addr = 0x1000_0000 + gap * 8 if (load and gap and with_loads) else 0
        records.append(
            BranchRecord(
                pc=pc,
                target=target,
                taken=taken,
                kind=kind,
                inst_gap=gap,
                load_addr=load_addr,
                depends_on_load=bool(load_addr) and kind is BranchKind.COND,
            )
        )
    return records


def normalised_targets(records):
    taken = {}
    for rec in records:
        if rec.taken and rec.target:
            taken.setdefault(rec.pc, rec.target)
    return [r.target if r.taken else taken.get(r.pc, 0) for r in records]


def assert_stream_preserved(original, out, check_loads):
    """The per-branch vectors and aggregates the issue pins down."""
    assert [r.pc for r in out] == [r.pc for r in original]
    assert [r.taken for r in out] == [r.taken for r in original]
    assert [r.target for r in out] == normalised_targets(original)
    assert [r.kind for r in out] == [r.kind for r in original]
    assert [r.inst_gap for r in out] == [r.inst_gap for r in original]
    if check_loads:
        assert [r.load_addr for r in out] == [r.load_addr for r in original]
        assert [r.depends_on_load for r in out] == [
            r.depends_on_load for r in original
        ]
    before, after = collect_stats(original), collect_stats(out)
    assert after.taken_rate == before.taken_rate
    assert after.static_sites == before.static_sites
    assert after.total_instructions == before.total_instructions

    # ...and the full chain: RPTR serialise → loads_trace → columnar.
    reloaded = loads_trace(dumps_trace(out))
    assert reloaded == out
    columns = ColumnarTrace.from_records(reloaded)
    assert columns.to_records() == out


@settings(max_examples=40, deadline=None)
@given(_streams)
def test_champsim_round_trip_preserves_stream(stream):
    records = build_records(stream, with_loads=True)
    out = convert_bytes(write_champsim(records))
    assert out.format == "champsim"
    assert_stream_preserved(records, out.records, check_loads=True)


@settings(max_examples=40, deadline=None)
@given(_streams)
def test_bt9_round_trip_preserves_stream(stream):
    records = build_records(stream, with_loads=False)
    out = convert_bytes(write_bt9(records).encode())
    assert out.format == "bt9"
    assert_stream_preserved(records, out.records, check_loads=False)


@settings(max_examples=40, deadline=None)
@given(_streams)
def test_formats_agree_on_direction_stream(stream):
    """Both adapters recover the identical (pc, taken) stream."""
    records = build_records(stream, with_loads=False)
    champsim = convert_bytes(write_champsim(records)).records
    bt9 = convert_bytes(write_bt9(records).encode()).records
    assert [(r.pc, r.taken, r.kind) for r in champsim] == [
        (r.pc, r.taken, r.kind) for r in bt9
    ]
