"""Property-based tests for the pipeline model on random small traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LoopPredictor, LoopPredictorConfig, StandardLocalUnit
from repro.core.repair import ForwardWalkRepair, PerfectRepair
from repro.pipeline.core import PipelineModel
from repro.predictors.bimodal import BimodalPredictor
from repro.trace.records import BranchKind, BranchRecord

# Small random traces: a handful of PCs, arbitrary directions/gaps.
_record = st.builds(
    lambda pc_index, taken, gap, kind_cond: BranchRecord(
        pc=0x4000 + 16 * pc_index,
        target=0x4000 + 16 * pc_index - 64 if taken else 0x4000 + 16 * pc_index + 64,
        taken=taken if kind_cond else True,
        kind=BranchKind.COND if kind_cond else BranchKind.UNCOND,
        inst_gap=gap,
    ),
    pc_index=st.integers(0, 9),
    taken=st.booleans(),
    gap=st.integers(0, 12),
    kind_cond=st.booleans(),
)

_traces = st.lists(_record, min_size=1, max_size=120)


@settings(max_examples=25, deadline=None)
@given(_traces)
def test_pipeline_conserves_instructions(records):
    stats = PipelineModel(BimodalPredictor()).run(records)
    assert stats.instructions == sum(r.group_size for r in records)
    assert stats.branches == len(records)
    assert stats.cycles >= 1


@settings(max_examples=25, deadline=None)
@given(_traces)
def test_pipeline_counts_are_consistent(records):
    stats = PipelineModel(BimodalPredictor()).run(records)
    cond = sum(1 for r in records if r.kind is BranchKind.COND)
    assert stats.cond_branches == cond
    assert 0 <= stats.mispredictions <= cond
    assert stats.taken_branches <= cond


@settings(max_examples=15, deadline=None)
@given(_traces)
def test_pipeline_rob_always_drains(records):
    model = PipelineModel(BimodalPredictor())
    model.run(records)
    assert model._rob_occupancy == 0
    assert not model._rob


@settings(max_examples=10, deadline=None)
@given(_traces)
def test_repaired_unit_never_crashes_and_is_deterministic(records):
    def run_once(scheme):
        unit = StandardLocalUnit(
            LoopPredictor(LoopPredictorConfig.entries(16, confidence_threshold=2)),
            scheme,
        )
        model = PipelineModel(BimodalPredictor(), unit=unit)
        stats = model.run(records)
        return (stats.cycles, stats.mispredictions)

    assert run_once(PerfectRepair()) == run_once(PerfectRepair())
    assert run_once(ForwardWalkRepair()) == run_once(ForwardWalkRepair())


@settings(max_examples=10, deadline=None)
@given(_traces)
def test_same_trace_twice_is_bit_identical(records):
    """Fresh models fed the *same* trace list produce identical SimStats.

    Guards the hot-loop refactor and the runner's worker-local trace
    memoization: models share one records list across runs, so any
    mutation of the trace (or predictor state leaking between
    instances) shows up as diverging stats on the second pass.
    """
    from dataclasses import asdict

    from repro.predictors.tage import TagePredictor

    def run_once():
        unit = StandardLocalUnit(
            LoopPredictor(LoopPredictorConfig.entries(16, confidence_threshold=2)),
            ForwardWalkRepair(),
        )
        return PipelineModel(TagePredictor(), unit=unit).run(records)

    first = asdict(run_once())
    second = asdict(run_once())
    assert first == second


@settings(max_examples=10, deadline=None)
@given(_traces)
def test_mispredictions_never_exceed_baseline_plus_overrides(records):
    """Sanity link between override counts and MPKI movement."""
    unit = StandardLocalUnit(
        LoopPredictor(LoopPredictorConfig.entries(16, confidence_threshold=2)),
        PerfectRepair(),
    )
    stats = PipelineModel(BimodalPredictor(), unit=unit).run(records)
    overrides = stats.extra["unit"]["overrides"]
    assert stats.mispredictions <= stats.base_wrong + overrides
