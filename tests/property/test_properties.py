"""Property-based tests (hypothesis) for core data structures."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.bht import BhtConfig, BranchHistoryTable
from repro.core.loop_predictor import LoopPredictor, pack_state, unpack_state
from repro.core.local_base import SpecUpdate
from repro.core.obq import OutstandingBranchQueue
from repro.core.ports import repair_duration
from repro.predictors.counters import counter_update
from repro.predictors.history import FoldedHistory, GlobalHistory
from repro.trace.io import dumps_trace, loads_trace
from repro.trace.records import BranchKind, BranchRecord

# --------------------------------------------------------------------- #
# strategies

branch_records = st.builds(
    BranchRecord,
    pc=st.integers(min_value=0, max_value=2**48),
    target=st.integers(min_value=0, max_value=2**48),
    taken=st.just(True),
    kind=st.sampled_from(list(BranchKind)),
    inst_gap=st.integers(min_value=0, max_value=500),
    load_addr=st.integers(min_value=0, max_value=2**48),
    depends_on_load=st.booleans(),
)

cond_records = st.builds(
    BranchRecord,
    pc=st.integers(min_value=0, max_value=2**32),
    target=st.integers(min_value=0, max_value=2**32),
    taken=st.booleans(),
    kind=st.just(BranchKind.COND),
    inst_gap=st.integers(min_value=0, max_value=50),
)


# --------------------------------------------------------------------- #
# trace serialization

@given(st.lists(st.one_of(branch_records, cond_records), max_size=50))
def test_trace_round_trip(records):
    assert loads_trace(dumps_trace(records)) == records


# --------------------------------------------------------------------- #
# folded history

@given(
    st.lists(
        st.tuples(st.integers(0, 2**20), st.booleans()), min_size=1, max_size=120
    ),
    st.integers(2, 40),
    st.integers(2, 12),
)
def test_folded_history_incremental_equals_rebuild(pushes, length, compressed):
    history = GlobalHistory(max_length=max(length, 1) + 8)
    fold = history.register_fold(FoldedHistory(length, compressed))
    for pc, taken in pushes:
        history.push(pc, taken)
    reference = FoldedHistory(length, compressed)
    reference.rebuild(history.ghist)
    assert fold.comp == reference.comp


@given(
    st.lists(st.tuples(st.integers(0, 2**16), st.booleans()), min_size=2, max_size=60),
    st.integers(1, 30),
)
def test_history_checkpoint_restore_identity(pushes, cut):
    history = GlobalHistory(max_length=48)
    fold = history.register_fold(FoldedHistory(32, 7))
    cut = min(cut, len(pushes) - 1)
    for pc, taken in pushes[:cut]:
        history.push(pc, taken)
    ckpt = history.checkpoint()
    saved = (history.ghist, history.phist, fold.comp)
    for pc, taken in pushes[cut:]:
        history.push(pc, taken)
    history.restore(ckpt)
    assert (history.ghist, history.phist, fold.comp) == saved


# --------------------------------------------------------------------- #
# counters

@given(st.integers(0, 7), st.lists(st.booleans(), max_size=40), st.integers(1, 3))
def test_counter_stays_in_range(start, updates, bits):
    max_value = (1 << bits) - 1
    value = min(start, max_value)
    for taken in updates:
        value = counter_update(value, taken, max_value)
        assert 0 <= value <= max_value


# --------------------------------------------------------------------- #
# BHT

@given(
    st.lists(
        st.tuples(st.integers(0, 200), st.integers(0, 4095)),
        min_size=1,
        max_size=200,
    )
)
def test_bht_find_after_allocate(ops):
    bht = BranchHistoryTable(BhtConfig(entries=32, ways=4))
    for pc_index, state in ops:
        pc = 0x1000 + 4 * pc_index
        slot = bht.find(pc)
        if slot < 0:
            slot = bht.allocate(pc, state)
        else:
            bht.set_state(slot, state)
        found = bht.find(pc)
        assert found == slot
        assert bht.state_at(found) == state
        assert bht.occupancy() <= 32


@given(
    st.lists(st.tuples(st.integers(0, 60), st.integers(0, 2047)), max_size=60),
    st.lists(st.tuples(st.integers(0, 60), st.integers(0, 2047)), max_size=60),
)
def test_bht_snapshot_restore_identity(before_ops, after_ops):
    bht = BranchHistoryTable(BhtConfig(entries=16, ways=4))
    for pc_index, state in before_ops:
        pc = 0x1000 + 4 * pc_index
        if bht.find(pc) < 0:
            bht.allocate(pc, state)
        else:
            bht.set_state(bht.find(pc), state)
    snap = bht.snapshot()
    reference = bht.snapshot()
    for pc_index, state in after_ops:
        pc = 0x1000 + 4 * pc_index
        if bht.find(pc) < 0:
            bht.allocate(pc, state)
        else:
            bht.set_state(bht.find(pc), state)
    bht.restore_snapshot(snap)
    assert bht.snapshot() == reference
    # Restoring again is idempotent (zero dirty slots).
    assert bht.restore_snapshot(snap) == 0


# --------------------------------------------------------------------- #
# OBQ

@given(
    st.lists(st.integers(0, 7), min_size=1, max_size=80),
    st.booleans(),
    st.integers(2, 16),
)
def test_obq_invariants(pc_indices, coalesce, capacity):
    obq = OutstandingBranchQueue(capacity=capacity, coalesce=coalesce)
    for uid, pc_index in enumerate(pc_indices):
        spec = SpecUpdate(
            pc=0x1000 + 16 * pc_index,
            slot=0,
            pre_state=uid,
            pre_valid=True,
            post_state=uid + 2,
        )
        obq.push(uid, spec)
        entries = obq.entries()
        # Bounded.
        assert len(entries) <= capacity
        # Program-ordered, non-overlapping uid ranges.
        for older, younger in zip(entries, entries[1:]):
            assert older.last_uid < younger.first_uid
        for entry in entries:
            assert entry.first_uid <= entry.last_uid


@given(st.lists(st.integers(0, 7), min_size=1, max_size=60), st.integers(0, 60))
def test_obq_flush_keeps_only_older(pc_indices, boundary):
    obq = OutstandingBranchQueue(capacity=64, coalesce=False)
    for uid, pc_index in enumerate(pc_indices):
        obq.push(
            uid,
            SpecUpdate(
                pc=0x1000 + 16 * pc_index,
                slot=0,
                pre_state=0,
                pre_valid=True,
                post_state=1,
            ),
        )
    obq.flush_younger(boundary)
    assert all(entry.first_uid <= boundary for entry in obq.entries())


# --------------------------------------------------------------------- #
# loop predictor state machine

@given(st.integers(0, 2047), st.booleans(), st.lists(st.booleans(), max_size=30))
def test_loop_state_machine_invariants(count, dominant, outcomes):
    predictor = LoopPredictor()
    state = pack_state(count, dominant)
    for taken in outcomes:
        state = predictor.next_state(state, taken)
        new_count, _ = unpack_state(state)
        assert 0 <= new_count <= 2047


@given(st.lists(st.booleans(), min_size=1, max_size=40))
def test_loop_spec_update_matches_next_state(outcomes):
    """The table update must agree with the pure transition function."""
    predictor = LoopPredictor()
    pc = 0x4000
    state = None
    for taken in outcomes:
        spec = predictor.spec_update(pc, taken)
        if state is not None:
            assert spec.pre_state == state
            assert spec.post_state == predictor.next_state(state, taken)
        state = spec.post_state


@given(st.lists(st.booleans(), min_size=1, max_size=30))
def test_loop_repair_restores_pre_state(outcomes):
    """repair_write(pre_state) is the exact inverse of spec_update."""
    predictor = LoopPredictor()
    pc = 0x4000
    predictor.spec_update(pc, True)
    baseline_state = predictor.bht.state_at(predictor.bht.find(pc))
    specs = [predictor.spec_update(pc, taken) for taken in outcomes]
    predictor.repair_write(pc, specs[0].pre_state)
    assert predictor.bht.state_at(predictor.bht.find(pc)) == baseline_state


# --------------------------------------------------------------------- #
# repair timing

@given(st.integers(0, 200), st.integers(0, 200), st.integers(1, 16), st.integers(1, 16))
def test_repair_duration_properties(reads, writes, read_ports, write_ports):
    duration = repair_duration(reads, writes, read_ports, write_ports)
    assert duration >= 0
    # Monotone in work:
    assert repair_duration(reads + 1, writes, read_ports, write_ports) >= duration
    assert repair_duration(reads, writes + 1, read_ports, write_ports) >= duration
    # Antitone in ports:
    assert repair_duration(reads, writes, read_ports + 1, write_ports + 1) <= duration
    # Enough bandwidth finishes in one cycle:
    if reads or writes:
        assert repair_duration(reads, writes, max(reads, 1), max(writes, 1)) == 1
