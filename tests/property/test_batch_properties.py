"""Property-style check: the batch kernel equals the scalar reference
for randomly drawn configurations on randomly generated short traces.

A seeded RNG sweeps the spec space (kind, table sizes, counter widths,
history lengths) and synthetic trace shapes (mixed kinds, biased and
patterned outcomes, aliasing PC sets) far more densely than the
hand-picked cases in ``tests/pipeline/test_batch.py``; every drawn
config must produce the *identical per-branch prediction vector* both
ways.
"""

import random

from repro.pipeline.batch import functional_predictions, run_batch
from repro.predictors.table import TablePredictorSpec
from repro.trace.columns import ColumnarTrace
from repro.trace.records import BranchKind
from tests.conftest import make_branch


def _random_spec(rng: random.Random) -> TablePredictorSpec:
    kind = rng.choice(("bimodal", "gshare", "local2l"))
    counter_bits = rng.randint(1, 4)
    if kind == "bimodal":
        return TablePredictorSpec(
            kind="bimodal",
            log_entries=rng.randint(1, 10),
            counter_bits=counter_bits,
        )
    if kind == "gshare":
        log_entries = rng.randint(1, 12)
        return TablePredictorSpec(
            kind="gshare",
            log_entries=log_entries,
            counter_bits=2,
            history_bits=rng.randint(1, log_entries),
        )
    return TablePredictorSpec(
        kind="local2l",
        log_entries=rng.randint(1, 10),
        counter_bits=counter_bits,
        history_bits=rng.randint(1, 10),
        bht_log_entries=rng.randint(1, 8),
    )


def _random_trace(rng: random.Random) -> list:
    # A handful of PCs on purpose: heavy aliasing exercises the
    # same-index conflict schedule, the part most worth fuzzing.
    pcs = [rng.randrange(0, 1 << 20) << 2 for _ in range(rng.randint(1, 8))]
    bias = {pc: rng.random() for pc in pcs}
    records = []
    for _ in range(rng.randint(1, 400)):
        pc = rng.choice(pcs)
        if rng.random() < 0.15:
            records.append(
                make_branch(pc=pc, taken=True, kind=BranchKind.UNCOND)
            )
        else:
            records.append(make_branch(pc=pc, taken=rng.random() < bias[pc]))
    return records


def test_random_configs_match_scalar_reference():
    rng = random.Random(20260808)
    for round_index in range(30):
        records = _random_trace(rng)
        specs = [_random_spec(rng) for _ in range(rng.randint(1, 6))]
        trace = ColumnarTrace.from_records(records)
        interval = rng.choice((1, 7, 64, 4096))
        result = run_batch(trace, specs, interval=interval)
        for lane, spec in enumerate(specs):
            expected = functional_predictions(spec.build(), records)
            actual = result.predictions[lane].tolist()
            assert actual == expected, (
                f"round {round_index}: {spec.spec_string} diverged "
                f"(interval {interval}, {len(records)} records)"
            )
