"""Unit tests for SimStats."""

from repro.pipeline.stats import SimStats


class TestSimStats:
    def test_ipc(self):
        stats = SimStats(instructions=1000, cycles=500)
        assert stats.ipc == 2.0
        assert SimStats().ipc == 0.0

    def test_mpki(self):
        stats = SimStats(instructions=10_000, mispredictions=42)
        assert stats.mpki == 4.2
        assert SimStats().mpki == 0.0

    def test_branch_accuracy(self):
        stats = SimStats(cond_branches=200, mispredictions=10)
        assert stats.branch_accuracy == 0.95
        assert SimStats().branch_accuracy == 1.0

    def test_as_dict_round_trips_extras(self):
        stats = SimStats(instructions=100, cycles=50)
        stats.extra["unit"] = {"lookups": 7}
        payload = stats.as_dict()
        assert payload["ipc"] == 2.0
        assert payload["unit"] == {"lookups": 7}
        assert "mpki" in payload and "branch_accuracy" in payload
