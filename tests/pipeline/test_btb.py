"""Unit tests for the branch target buffer."""

import pytest

from repro.errors import ConfigError
from repro.pipeline.btb import BranchTargetBuffer


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64, ways=4)
        assert btb.lookup(0x1000) is None
        btb.install(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000
        assert btb.hits == 1 and btb.misses == 1

    def test_update_existing_entry(self):
        btb = BranchTargetBuffer(entries=64, ways=4)
        btb.install(0x1000, 0x2000)
        btb.install(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(entries=4, ways=2)  # 2 sets
        # Find three pcs in one set.
        pcs = []
        base = None
        for pc in range(0x1000, 0x8000, 4):
            s = btb._base(pc)
            if base is None:
                base = s
            if s == base:
                pcs.append(pc)
            if len(pcs) == 3:
                break
        a, b, c = pcs
        btb.install(a, 1)
        btb.install(b, 2)
        btb.lookup(a)
        btb.install(c, 3)
        assert btb.lookup(a) == 1
        assert btb.lookup(b) is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            BranchTargetBuffer(entries=100, ways=3)
        with pytest.raises(ConfigError):
            BranchTargetBuffer(entries=0, ways=1)

    def test_miss_rate(self):
        btb = BranchTargetBuffer(entries=64, ways=4)
        assert btb.miss_rate == 0.0
        btb.lookup(0x1000)
        assert btb.miss_rate == 1.0
