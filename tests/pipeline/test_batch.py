"""Batch sweep kernel: bit-identical to the exact engine, only faster."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.harness.systems import resolve_system, table_predictor_spec
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline.batch import functional_predictions, run_batch
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import PipelineModel
from repro.trace.columns import ColumnarTrace
from tests.conftest import loop_trace, make_branch

SPEC_STRINGS = (
    "bimodal:4:2",
    "bimodal:8:3",
    "gshare:6:4",
    "gshare:10:10",
    "local2l:4:3:6:2",
    "local2l:6:6:8:2",
)


def _specs(names=SPEC_STRINGS):
    return [table_predictor_spec(resolve_system(name)) for name in names]


def _mixed_trace(tiny_trace):
    return ColumnarTrace.from_records(tiny_trace)


class TestKernelEquivalence:
    def test_predictions_match_scalar_reference(self, tiny_trace):
        trace = _mixed_trace(tiny_trace)
        specs = _specs()
        result = run_batch(trace, specs)
        for lane, spec in enumerate(specs):
            expected = functional_predictions(spec.build(), tiny_trace)
            assert result.predictions[lane].tolist() == expected, spec.spec_string

    def test_matches_full_pipeline_stats(self, tiny_trace):
        trace = _mixed_trace(tiny_trace)
        specs = _specs(["bimodal:6:2", "gshare:8:6", "local2l:5:4:7:2"])
        result = run_batch(trace, specs)
        for lane, spec in enumerate(specs):
            model = PipelineModel(
                spec.build(),
                unit=None,
                config=PipelineConfig(),
                hierarchy=CacheHierarchy(),
            )
            stats = model.run(tiny_trace)
            assert result.mispredictions(lane) == stats.mispredictions
            assert result.instructions == stats.instructions
            assert result.mpki(lane) == stats.mpki

    def test_interval_invariance(self, tiny_trace):
        trace = _mixed_trace(tiny_trace)
        specs = _specs(["gshare:6:4", "local2l:4:3:6:2"])
        small = run_batch(trace, specs, interval=17)
        large = run_batch(trace, specs, interval=1 << 20)
        assert np.array_equal(small.predictions, large.predictions)

    def test_same_index_conflicts_serialise(self):
        # Every record hits the same bimodal counter: the kernel's
        # level schedule must apply the updates strictly in trace
        # order, exactly like the scalar counter.
        records = loop_trace(pc=0x1000, trip=3, executions=40)
        trace = ColumnarTrace.from_records(records)
        specs = _specs(["bimodal:1:2"])
        result = run_batch(trace, specs, interval=8)
        expected = functional_predictions(specs[0].build(), records)
        assert result.predictions[0].tolist() == expected


class TestBatchResult:
    def test_counts_and_rates(self):
        records = [
            make_branch(pc=0x40, taken=True),
            make_branch(pc=0x44, taken=False),
        ]
        trace = ColumnarTrace.from_records(records)
        result = run_batch(trace, _specs(["bimodal:2:2"]))
        assert result.cond_branches == 2
        assert result.taken_branches == 1
        assert result.instructions == sum(r.inst_gap + 1 for r in records)
        assert 0.0 <= result.accuracy(0) <= 1.0
        assert result.mpki(0) == (
            result.mispredictions(0) * 1000.0 / result.instructions
        )

    def test_empty_trace_mpki_is_zero(self):
        trace = ColumnarTrace.from_records([])
        result = run_batch(trace, _specs(["bimodal:2:2"]))
        assert result.instructions == 0
        assert result.mpki(0) == 0.0
        assert result.cond_branches == 0


class TestValidation:
    def test_no_specs_rejected(self, tiny_trace):
        with pytest.raises(ConfigError):
            run_batch(_mixed_trace(tiny_trace), [])

    def test_bad_interval_rejected(self, tiny_trace):
        with pytest.raises(ConfigError):
            run_batch(_mixed_trace(tiny_trace), _specs(["bimodal:2:2"]), interval=0)
