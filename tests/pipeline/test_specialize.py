"""Trace-guided specialization: bit-identity, guards, aborts, caching.

The specialized engines' one contract is *bit-identical SimStats,
only faster* — so nearly every test here runs the same (model, trace)
pair through ``model.run`` and :func:`run_specialized` and requires
exact equality, including through forced aborts, real guard trips and
every Table 3 system.  Speed is benchmarked by ``repro perf``, never
asserted here.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

import repro.pipeline.specialize as sp
from repro.harness.runner import load_trace
from repro.harness.systems import TABLE3_SYSTEMS, build_system, resolve_system
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import PipelineModel
from repro.pipeline.specialize import (
    SPECIALIZE_VERSION,
    engine_cache_key,
    generate_engine_source,
    load_engine,
    plan_specialization,
    run_specialized,
)
from repro.trace.records import BranchKind, BranchRecord
from repro.workloads.suite import get_workload


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    monkeypatch.delenv("REPRO_SPECIALIZE", raising=False)


def _model(system_name: str) -> PipelineModel:
    baseline, unit = build_system(resolve_system(system_name))
    return PipelineModel(
        baseline, unit=unit, config=PipelineConfig(), hierarchy=CacheHierarchy()
    )


def _records(workload: str = "hpc-fft", n: int = 3000) -> list[BranchRecord]:
    return list(load_trace(get_workload(workload), n))


def _run_both(system_name, records, **kw):
    generic = _model(system_name).run(records)
    specialized, info = run_specialized(
        _model(system_name), records, profile_branches=1000, **kw
    )
    return generic, specialized, info


def _synthetic_trace(rng: random.Random, n: int) -> list[BranchRecord]:
    """A mixed synthetic trace: loops, calls, loads, varied gaps."""
    records = []
    pcs = [0x1000 + 8 * i for i in range(24)]
    for i in range(n):
        pc = rng.choice(pcs)
        kind = rng.choice(
            [BranchKind.COND] * 8
            + [BranchKind.UNCOND, BranchKind.CALL, BranchKind.RET, BranchKind.INDIRECT]
        )
        has_load = rng.random() < 0.3
        records.append(
            BranchRecord(
                pc=pc,
                target=pc + rng.choice([16, 64, -32 & 0xFFFF]),
                taken=bool(kind is not BranchKind.COND or (pc // 8 + i) % 3),
                kind=kind,
                inst_gap=rng.randrange(0, 9),
                load_addr=rng.randrange(0x2000, 0x8000, 8) if has_load else 0,
                depends_on_load=bool(has_load and rng.random() < 0.5),
            )
        )
    return records


class TestBitIdentity:
    @pytest.mark.parametrize("system", [cfg.name for cfg in TABLE3_SYSTEMS])
    def test_every_table3_system_identical(self, system):
        records = _records(n=3000)
        generic, specialized, info = _run_both(system, records)
        assert specialized == generic
        assert info["engine"] == "specialized"
        assert info["specialized_branches"] == 2000

    def test_random_systems_on_synthetic_traces(self):
        # Property-style sweep: seeded random (system, trace) pairings,
        # including spec-string systems outside Table 3.
        rng = random.Random(0xC0FFEE)
        names = [cfg.name for cfg in TABLE3_SYSTEMS] + [
            "gshare:12:10",
            "local2l:10:8:12",
            "bimodal:12",
        ]
        for trial in range(4):
            system = rng.choice(names)
            records = _synthetic_trace(rng, 2500)
            generic, specialized, info = _run_both(system, records)
            assert specialized == generic, f"trial {trial}: {system} diverged"

    def test_imported_public_traces_identical(self, tmp_path, monkeypatch):
        from pathlib import Path

        from repro.harness import tracestore

        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
        monkeypatch.setenv("REPRO_OFFLINE", "1")
        fixtures = Path(__file__).resolve().parent.parent / "data" / "traces"
        for fixture, name in [
            (fixtures / "quicksort.champsim.gz", "public-quicksort"),
            (fixtures / "dijkstra.bt9", "public-dijkstra"),
        ]:
            spec = tracestore.import_trace(fixture, name=name)
            records = load_trace(spec, min(spec.trace_records, 4000))
            for system in ("baseline-tage", "forward-walk-coalesce"):
                generic, specialized, _ = _run_both(system, records)
                assert specialized == generic, f"{name} on {system} diverged"

    def test_short_trace_stays_generic(self):
        records = _records(n=500)
        generic, specialized, info = _run_both("baseline-tage", records)
        assert specialized == generic
        assert info["engine"] == "generic"
        assert info["reason"] == "trace shorter than profile prefix"


class TestGuardsAndAborts:
    def test_forced_abort_is_identical_and_counted(self):
        records = _records(n=3000)
        generic, specialized, info = _run_both(
            "baseline-tage", records, force_abort_at=1800, checkpoint_interval=400
        )
        assert specialized == generic
        assert info["aborted"] is True
        assert info["guard"] == "forced"
        assert info["guards_failed"] == 1
        assert info["aborts"] == 1
        # Branches committed before the abort stay specialized.
        assert 0 < info["specialized_branches"] < 2000
        assert info["checkpoints"] >= 1

    def test_forced_abort_at_zero_runs_fully_generic(self):
        records = _records(n=3000)
        generic, specialized, info = _run_both(
            "baseline-tage", records, force_abort_at=0
        )
        assert specialized == generic
        assert info["aborted"] is True
        assert info["specialized_branches"] == 0

    def test_real_guard_trip_falls_back_bit_identically(self):
        # Profile sees no loads -> the loads path is compiled to a
        # guard; a load after the profile must abort, finish generic,
        # and still match the generic run exactly.
        base = [
            replace(r, load_addr=0, depends_on_load=False) for r in _records(n=3000)
        ]
        base[2400] = replace(base[2400], load_addr=0x4000, depends_on_load=True)
        generic, specialized, info = _run_both(
            "baseline-tage", base, checkpoint_interval=500
        )
        assert specialized == generic
        assert info["aborted"] is True
        assert info["guard"] == "loads"
        assert info["guards_failed"] == 1


class TestPlanning:
    def test_stock_tage_gets_deep_template(self):
        records = _records(n=1200)
        decision, reason = plan_specialization(
            _model("baseline-tage"), records, 1000
        )
        assert reason is None
        assert decision.template == "tage"
        assert decision.tage is not None

    def test_unit_system_gets_unit_template(self):
        records = _records(n=1200)
        decision, _ = plan_specialization(
            _model("forward-walk-coalesce"), records, 1000
        )
        assert decision.template == "unit"

    def test_impure_lookup_predictor_declines(self):
        # Spec-string table predictors train inside lookup; the planner
        # must refuse rather than risk drift, and run_specialized then
        # falls back to the generic engine (covered by the bit-identity
        # property test above).
        records = _records(n=1200)
        decision, reason = plan_specialization(
            _model("gshare:12:10"), records, 1000
        )
        assert decision is None
        assert reason == "predictor lookup is not pure"

    def test_telemetry_tracing_declines(self):
        from repro.telemetry import TELEMETRY

        model = _model("baseline-tage")
        records = _records(n=1200)
        TELEMETRY.enable()
        TELEMETRY.tracing = True
        try:
            # The model captured the telemetry handle at construction;
            # rebuild so it sees the tracing state.
            model = _model("baseline-tage")
            decision, reason = plan_specialization(model, records, 1000)
        finally:
            TELEMETRY.disable()
        assert decision is None
        assert reason == "telemetry tracing active"


class TestEngineCache:
    def _decision(self):
        decision, reason = plan_specialization(
            _model("baseline-tage"), _records(n=1200), 1000
        )
        assert reason is None
        return decision

    def test_memo_returns_same_engine(self, monkeypatch):
        monkeypatch.setattr(sp, "_ENGINE_MEMO", {})
        decision = self._decision()
        first = load_engine(decision, "cfg")
        second = load_engine(decision, "cfg")
        assert first is second

    def test_disk_cache_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setattr(sp, "_ENGINE_MEMO", {})
        decision = self._decision()
        first = load_engine(decision, "cfg", cache_dir=tmp_path)
        key = engine_cache_key(decision, "cfg")
        assert (tmp_path / f"{key}.py").read_text() == first.source
        # A fresh process (cleared memo) compiles the cached source
        # instead of regenerating it.
        monkeypatch.setattr(sp, "_ENGINE_MEMO", {})
        second = load_engine(decision, "cfg", cache_dir=tmp_path)
        assert second is not first
        assert second.source == first.source

    def test_corrupt_disk_entry_regenerated(self, tmp_path, monkeypatch):
        monkeypatch.setattr(sp, "_ENGINE_MEMO", {})
        decision = self._decision()
        key = engine_cache_key(decision, "cfg")
        (tmp_path / f"{key}.py").write_text("this is not python ][")
        engine = load_engine(decision, "cfg", cache_dir=tmp_path)
        assert engine.source == generate_engine_source(decision)
        # The corrupt entry was replaced by the regenerated source.
        assert (tmp_path / f"{key}.py").read_text() == engine.source

    def test_version_bump_invalidates_key(self, monkeypatch):
        decision = self._decision()
        old = engine_cache_key(decision, "cfg")
        monkeypatch.setattr(sp, "SPECIALIZE_VERSION", SPECIALIZE_VERSION + 1)
        assert engine_cache_key(decision, "cfg") != old

    def test_config_hash_in_key(self):
        decision = self._decision()
        assert engine_cache_key(decision, "a") != engine_cache_key(decision, "b")


class TestGeneratedSource:
    def _decisions(self):
        records = _records(n=1200)
        tage, _ = plan_specialization(_model("baseline-tage"), records, 1000)
        unit, _ = plan_specialization(
            _model("forward-walk-coalesce"), records, 1000
        )
        # No stock system plans "nounit" today (pure-lookup non-TAGE
        # predictors), so exercise its emitter directly.
        nounit = replace(tage, template="nounit", tage=None)
        return [tage, unit, nounit]

    def test_all_templates_generate_parseable_source(self):
        import ast

        for decision in self._decisions():
            source = ast.parse(generate_engine_source(decision))
            names = [
                node.name
                for node in ast.walk(source)
                if isinstance(node, ast.FunctionDef)
            ]
            assert "specialized_step" in names

    def test_no_placeholders_survive_generation(self):
        for decision in self._decisions():
            assert "__" not in generate_engine_source(decision).replace(
                "__dict__", ""
            )
