"""Integration-grade unit tests for the pipeline timing model."""

import pytest

from repro.core import LoopPredictor, LoopPredictorConfig, StandardLocalUnit
from repro.core.repair import NoRepair, PerfectRepair
from repro.errors import ConfigError
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import PipelineModel
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.tage import TagePredictor
from tests.conftest import loop_trace, make_branch


def run_trace(records, unit=None, config=None, baseline=None):
    model = PipelineModel(
        baseline if baseline is not None else TagePredictor(),
        unit=unit,
        config=config if config is not None else PipelineConfig(),
    )
    return model.run(records)


class TestConfig:
    def test_skylake_matches_table2(self):
        config = PipelineConfig.skylake()
        assert config.fetch_width == 4
        assert config.rob_entries == 224
        assert config.alloc_queue_entries == 64
        assert config.load_buffer_entries == 72
        assert config.store_buffer_entries == 56
        assert config.btb_entries == 2048

    def test_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(fetch_width=0)
        with pytest.raises(ConfigError):
            PipelineConfig(rob_entries=0)
        with pytest.raises(ConfigError):
            PipelineConfig(btb_entries=100, btb_ways=3)

    def test_penalty_estimate(self):
        config = PipelineConfig()
        assert config.mispredict_penalty_estimate() > 10


class TestBasicTiming:
    def test_instruction_accounting(self):
        records = [make_branch(pc=0x1000 + 16 * i, inst_gap=3) for i in range(50)]
        stats = run_trace(records)
        assert stats.instructions == 50 * 4
        assert stats.branches == 50
        assert stats.cond_branches == 50

    def test_ipc_bounded_by_width(self):
        records = [make_branch(pc=0x1000 + 16 * i, inst_gap=7) for i in range(200)]
        stats = run_trace(records)
        assert 0.0 < stats.ipc <= 4.0

    def test_more_mispredictions_lower_ipc(self):
        """A random stream must run slower than a biased one."""
        import random

        rng = random.Random(4)
        biased = [make_branch(pc=0x1000, taken=True, inst_gap=5) for _ in range(2000)]
        noisy = [
            make_branch(pc=0x1000, taken=rng.random() < 0.5, inst_gap=5)
            for _ in range(2000)
        ]
        stats_biased = run_trace(biased)
        stats_noisy = run_trace(noisy)
        assert stats_noisy.mpki > stats_biased.mpki
        assert stats_noisy.ipc < stats_biased.ipc

    def test_empty_trace(self):
        stats = run_trace([])
        assert stats.instructions == 0
        assert stats.cycles >= 1
        assert stats.mpki == 0.0

    def test_btb_misses_counted(self):
        records = [make_branch(pc=0x1000 + 32 * i, taken=True) for i in range(20)]
        stats = run_trace(records)
        assert stats.btb_misses == 20  # all cold

    def test_btb_warm_second_pass(self):
        records = [make_branch(pc=0x1000 + 32 * (i % 20), taken=True) for i in range(200)]
        stats = run_trace(records)
        assert stats.btb_misses == 20


class TestMispredictionMechanics:
    def test_wrong_path_branches_synthesized(self):
        records = loop_trace(pc=0x4000, trip=9, executions=40)
        stats = run_trace(records, baseline=BimodalPredictor())
        assert stats.mispredictions > 0
        assert stats.wrong_path_branches > 0

    def test_wrong_path_disabled(self):
        records = loop_trace(pc=0x4000, trip=9, executions=40)
        stats = run_trace(
            records,
            baseline=BimodalPredictor(),
            config=PipelineConfig(wrong_path=False),
        )
        assert stats.wrong_path_branches == 0

    def test_mispredictions_cost_cycles(self):
        records = loop_trace(pc=0x4000, trip=9, executions=40)
        always = run_trace(records, baseline=BimodalPredictor())

        class Oracle(BimodalPredictor):
            def __init__(self, answers):
                super().__init__()
                self._answers = iter(answers)

            def lookup(self, pc):
                pred = super().lookup(pc)
                pred.taken = next(self._answers)
                return pred

        oracle = Oracle([r.taken for r in records])
        perfect = run_trace(records, baseline=oracle)
        assert perfect.mispredictions == 0
        assert perfect.ipc > always.ipc

    def test_load_dependent_branch_slows_resolution(self):
        fast = [make_branch(pc=0x1000, taken=i % 3 != 0, inst_gap=5) for i in range(500)]
        slow = [
            make_branch(
                pc=0x1000,
                taken=i % 3 != 0,
                inst_gap=5,
                load_addr=0x100000 + 8192 * i,
                depends_on_load=True,
            )
            for i in range(500)
        ]
        from repro.memory import CacheHierarchy

        stats_fast = run_trace(fast, baseline=BimodalPredictor())
        model = PipelineModel(BimodalPredictor(), hierarchy=CacheHierarchy())
        stats_slow = model.run(slow)
        assert stats_slow.ipc < stats_fast.ipc


class TestRobBound:
    def test_rob_limits_inflight(self):
        """A huge group plus tiny ROB must raise, not wedge."""
        from repro.errors import SimulationError

        record = make_branch(inst_gap=300)
        with pytest.raises(SimulationError):
            run_trace([record], config=PipelineConfig(rob_entries=100))

    def test_rob_stalls_counted_under_memory_pressure(self):
        from repro.memory import CacheHierarchy

        records = [
            make_branch(
                pc=0x1000 + 16 * (i % 8),
                taken=True,
                inst_gap=6,
                load_addr=0x1000000 + 64 * 997 * i,
            )
            for i in range(2000)
        ]
        model = PipelineModel(
            BimodalPredictor(),
            config=PipelineConfig(rob_entries=64),
            hierarchy=CacheHierarchy(),
        )
        stats = model.run(records)
        assert stats.rob_stall_cycles > 0


class TestLocalUnitIntegration:
    def test_unit_stats_attached(self, tiny_trace):
        unit = StandardLocalUnit(
            LoopPredictor(LoopPredictorConfig.entries(64)), PerfectRepair()
        )
        model = PipelineModel(TagePredictor(), unit=unit)
        stats = model.run(tiny_trace)
        assert "unit" in stats.extra
        assert "repair" in stats.extra
        assert stats.extra["unit"]["lookups"] > 0

    def test_deterministic(self, tiny_trace):
        def run_once():
            unit = StandardLocalUnit(
                LoopPredictor(LoopPredictorConfig.entries(64)), NoRepair()
            )
            model = PipelineModel(TagePredictor(), unit=unit)
            stats = model.run(tiny_trace)
            return (stats.cycles, stats.mispredictions, stats.instructions)

        assert run_once() == run_once()

    def test_retirement_drains(self, tiny_trace):
        unit = StandardLocalUnit(
            LoopPredictor(LoopPredictorConfig.entries(64)), PerfectRepair()
        )
        model = PipelineModel(TagePredictor(), unit=unit)
        model.run(tiny_trace)
        assert model._rob_occupancy == 0
        assert len(model._rob) == 0
