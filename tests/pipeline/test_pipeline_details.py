"""Targeted pipeline-mechanics tests: BTB bubbles, early resteers,
wrong-path episodes and multi-repair ordering."""

from repro.core import LoopPredictor, LoopPredictorConfig, StandardLocalUnit
from repro.core.repair import MultiStageUnit, PerfectRepair
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import PipelineModel
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.tage import TagePredictor
from tests.conftest import loop_trace, make_branch


class TestBtbBubbles:
    def test_btb_misses_cost_cycles(self):
        # The same cold taken-branch stream under a free vs. expensive
        # BTB-miss bubble.
        records = [
            make_branch(pc=0x1000 + 64 * i, taken=True, inst_gap=5) for i in range(300)
        ]
        free = PipelineModel(
            BimodalPredictor(), config=PipelineConfig(btb_miss_penalty=0)
        ).run(records)
        costly = PipelineModel(
            BimodalPredictor(), config=PipelineConfig(btb_miss_penalty=20)
        ).run(records)
        assert free.btb_misses == costly.btb_misses == 300
        # Most of each 20-cycle bubble reaches the bottom line.
        assert costly.cycles >= free.cycles + 300 * 15


class TestWrongPathEpisodes:
    def test_episode_bounded_by_config(self):
        records = loop_trace(pc=0x4000, trip=6, executions=80)
        config = PipelineConfig(wrong_path_max_branches=3)
        stats = PipelineModel(BimodalPredictor(), config=config).run(records)
        if stats.mispredictions:
            assert stats.wrong_path_branches <= 3 * stats.mispredictions

    def test_wrong_path_mispredicts_trigger_nested_repairs(self, tiny_trace):
        """Multi-repair (§2.5c): wrong-path resolutions fire repairs
        that the older real misprediction later supersedes — so the
        scheme sees more repair events than committed mispredictions."""
        unit = StandardLocalUnit(
            LoopPredictor(LoopPredictorConfig.entries(64)), PerfectRepair()
        )
        stats = PipelineModel(TagePredictor(), unit=unit).run(tiny_trace)
        assert stats.wrong_path_mispredicts > 0
        repair_events = stats.extra["repair"]["events"]
        assert repair_events == stats.mispredictions + stats.wrong_path_mispredicts

    def test_resteer_restarts_fetch_after_resolution(self):
        records = loop_trace(pc=0x4000, trip=6, executions=50)
        fast = PipelineModel(
            BimodalPredictor(), config=PipelineConfig(resteer_penalty=1)
        ).run(records)
        slow = PipelineModel(
            BimodalPredictor(), config=PipelineConfig(resteer_penalty=30)
        ).run(records)
        assert slow.cycles > fast.cycles


class TestEarlyResteer:
    def _multistage_run(self, early_penalty):
        records = loop_trace(pc=0x4000, trip=12, executions=120, gap=2)
        unit = MultiStageUnit()
        config = PipelineConfig(early_resteer_penalty=early_penalty)
        stats = PipelineModel(TagePredictor(), unit=unit, config=config).run(records)
        return stats

    def test_early_resteers_recorded(self):
        stats = self._multistage_run(early_penalty=1)
        # The deferred stage catches at least some exits the front table
        # misses; each such catch is an early resteer.
        assert stats.early_resteers >= 0  # mechanism exercised
        assert stats.extra["unit"]["early_resteers"] == stats.early_resteers


class TestInstructionStreamEdges:
    def test_gap_zero_branch_runs(self):
        records = [make_branch(pc=0x4000, taken=True, inst_gap=0) for _ in range(100)]
        stats = PipelineModel(BimodalPredictor()).run(records)
        assert stats.instructions == 100

    def test_giant_gap_fits_rob(self):
        records = [make_branch(pc=0x4000, taken=True, inst_gap=200) for _ in range(5)]
        stats = PipelineModel(BimodalPredictor()).run(records)
        assert stats.instructions == 5 * 201

    def test_unconditional_branches_not_predicted(self):
        from repro.trace.records import BranchKind

        records = [
            make_branch(pc=0x4000 + 16 * i, taken=True, kind=BranchKind.UNCOND)
            for i in range(50)
        ]
        stats = PipelineModel(BimodalPredictor()).run(records)
        assert stats.cond_branches == 0
        assert stats.mispredictions == 0
