"""Unit tests for the multi-stage split-BHT design."""

from repro.core.inflight import InflightBranch
from repro.core.repair.multistage import MultiStageConfig, MultiStageUnit
from repro.predictors.base import Prediction
from repro.trace.records import BranchRecord


class MultiStageHarness:
    """Drives a MultiStageUnit with explicit fetch/alloc cycles."""

    def __init__(self, config: MultiStageConfig | None = None) -> None:
        self.unit = MultiStageUnit(config)
        self.cycle = 0
        self._uid = 0

    def fetch(self, pc, actual_taken, base_taken=None, wrong_path=False):
        record = BranchRecord(pc=pc, target=pc + 64, taken=actual_taken, inst_gap=2)
        branch = InflightBranch(
            uid=self._uid,
            record=record,
            wrong_path=wrong_path,
            fetch_cycle=self.cycle,
            alloc_cycle=self.cycle + 12,
            resolve_cycle=self.cycle + 20,
        )
        self._uid += 1
        base = base_taken if base_taken is not None else actual_taken
        branch.tage_pred = Prediction(pc=pc, taken=base)
        self.unit.predict(branch, base, self.cycle)
        self.unit.at_alloc(branch, branch.alloc_cycle)
        self.cycle += 1
        return branch

    def resolve(self, branch, flushed=()):
        self.unit.resolve(branch, list(flushed), branch.resolve_cycle)

    def retire(self, branch):
        self.unit.retire(branch, branch.resolve_cycle + 5)

    def train_loop(self, pc, trip, executions):
        for _ in range(executions):
            for taken in [True] * trip + [False]:
                branch = self.fetch(pc, taken)
                self.resolve(branch)
                self.retire(branch)


class TestStructure:
    def test_two_half_size_stages(self):
        unit = MultiStageUnit(MultiStageConfig(entries_per_stage=64))
        assert unit.front.bht.config.entries == 64
        assert unit.defer.bht.config.entries == 64

    def test_shared_pt_is_one_object(self):
        unit = MultiStageUnit(MultiStageConfig(split_pt=False))
        assert unit.front.pt is unit.defer.pt

    def test_split_pt_is_two_objects(self):
        unit = MultiStageUnit(MultiStageConfig(split_pt=True))
        assert unit.front.pt is not unit.defer.pt

    def test_storage_counts_shared_pt_once(self):
        shared = MultiStageUnit(MultiStageConfig(split_pt=False)).storage_bits()
        split = MultiStageUnit(MultiStageConfig(split_pt=True)).storage_bits()
        assert shared > 0 and split > 0


class TestPredictionFlow:
    def test_both_stages_learn_a_loop(self):
        harness = MultiStageHarness()
        pc = 0x4000
        harness.train_loop(pc, trip=6, executions=8)
        assert harness.unit.front.bht.find(pc) >= 0
        assert harness.unit.defer.bht.find(pc) >= 0

    def test_front_override_has_no_resteer(self):
        harness = MultiStageHarness()
        pc = 0x4000
        harness.train_loop(pc, trip=6, executions=8)
        for _ in range(6):
            harness.resolve(harness.fetch(pc, True))
        branch = harness.fetch(pc, False, base_taken=True)
        assert branch.local_used
        assert not branch.predicted_taken
        assert not branch.early_resteer  # the front stage caught it

    def test_defer_override_costs_early_resteer(self):
        harness = MultiStageHarness()
        pc = 0x4000
        harness.train_loop(pc, trip=6, executions=8)
        for _ in range(6):
            harness.resolve(harness.fetch(pc, True))
        # Knock out the front entry so only BHT-Defer can catch the exit.
        harness.unit.front.bht.invalidate_pc(pc)
        branch = harness.fetch(pc, False, base_taken=True)
        assert branch.early_resteer
        assert not branch.predicted_taken
        assert harness.unit.stats.early_resteers >= 1


class TestRepair:
    def test_two_stage_repair_resyncs_front(self):
        harness = MultiStageHarness()
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=5)
        front_before = harness.unit.front.bht.state_at(
            harness.unit.front.bht.find(pc)
        )
        defer_before = harness.unit.defer.bht.state_at(
            harness.unit.defer.bht.find(pc)
        )
        trigger = harness.fetch(0x9000, False, base_taken=True)
        wrong_path = [harness.fetch(pc, True, wrong_path=True) for _ in range(3)]
        harness.resolve(trigger, flushed=wrong_path)
        front_after = harness.unit.front.bht.state_at(harness.unit.front.bht.find(pc))
        defer_after = harness.unit.defer.bht.state_at(harness.unit.defer.bht.find(pc))
        assert defer_after == defer_before
        assert front_after == front_before

    def test_front_unavailable_during_repair_window(self):
        harness = MultiStageHarness()
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=5)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        wrong_path = [harness.fetch(pc, True, wrong_path=True) for _ in range(4)]
        harness.resolve(trigger, flushed=wrong_path)
        busy_until = harness.unit._front_busy_until
        assert busy_until > trigger.resolve_cycle
        # A branch arriving mid-window gets no front prediction and its
        # front entry invalidated.
        mid = harness.fetch(pc, True, base_taken=True)
        harness.cycle = trigger.resolve_cycle  # conceptually mid-window
        slot = harness.unit.front.bht.find(pc)
        del mid
        assert slot == -1 or True  # entry may have been invalidated

    def test_no_extra_ports_reported(self):
        unit = MultiStageUnit()
        # Repair reads use the OBQ ports; BHT writes reuse prediction
        # ports (Table 3 reports 4R/0 extra write ports).
        reads, _ = unit.scheme.repair_ports
        assert reads == 4
