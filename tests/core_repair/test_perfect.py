"""Unit tests for perfect (oracle) repair."""

from repro.core.repair.perfect import PerfectRepair
from tests.core_repair.helpers import SchemeHarness


class TestPerfectRepair:
    def test_restores_wrong_path_pollution_exactly(self):
        harness = SchemeHarness(PerfectRepair())
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=5)
        # Mid-loop: three iterations in.
        for _ in range(3):
            harness.resolve(harness.fetch(pc, True))
        count_before, _ = harness.state_of(pc)

        # A noise branch mispredicts; the wrong path re-runs the loop
        # branch four more times (predicted taken).
        noise = harness.fetch(0x9000, False, base_taken=True)
        wrong_path = [
            harness.fetch(pc, True, wrong_path=True) for _ in range(4)
        ]
        polluted, _ = harness.state_of(pc)
        assert polluted == count_before + 4

        harness.resolve(noise, flushed=wrong_path)
        count_after, _ = harness.state_of(pc)
        assert count_after == count_before

    def test_own_entry_updated_with_actual_outcome(self):
        harness = SchemeHarness(PerfectRepair())
        pc = 0x4000
        harness.train_loop(pc, trip=6, executions=5)
        # Run to the learned exit point...
        for _ in range(6):
            harness.resolve(harness.fetch(pc, True))
        # ...where the predictor says "exit" but the loop runs longer:
        # the misprediction repair must land the *resolved* count.
        branch = harness.fetch(pc, actual_taken=True)
        assert branch.local_used and not branch.local_pred.taken
        assert branch.mispredicted
        harness.resolve(branch)
        count, dominant = harness.state_of(pc)
        assert (count, dominant) == (7, True)

    def test_fresh_wrong_path_allocations_removed(self):
        harness = SchemeHarness(PerfectRepair())
        victim = harness.fetch(0x4000, False, base_taken=True)
        ghost = harness.fetch(0x7777, True, wrong_path=True)
        assert harness.local.bht.find(0x7777) >= 0
        harness.resolve(victim, flushed=[ghost])
        assert harness.local.bht.find(0x7777) == -1

    def test_first_flushed_instance_wins(self):
        """Restore must use the oldest flushed instance's pre-state."""
        harness = SchemeHarness(PerfectRepair())
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=4)
        base_count, _ = harness.state_of(pc)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        flushed = [harness.fetch(pc, True, wrong_path=True) for _ in range(3)]
        harness.resolve(trigger, flushed=flushed)
        count, _ = harness.state_of(pc)
        assert count == base_count

    def test_zero_cost(self):
        scheme = PerfectRepair()
        harness = SchemeHarness(scheme)
        branch = harness.fetch(0x4000, False, base_taken=True)
        done = scheme.on_mispredict(branch, [], cycle=100)
        assert done == 100
        assert scheme.can_predict(0x4000, 100)
        assert scheme.storage_bits() == 0

    def test_records_figure8_demand(self):
        scheme = PerfectRepair()
        harness = SchemeHarness(scheme)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        flushed = [
            harness.fetch(0x4000 + 16 * i, True, wrong_path=True) for i in range(5)
        ]
        harness.resolve(trigger, flushed=flushed)
        # 5 distinct flushed PCs + the mispredicting branch itself.
        assert scheme.stats.writes_per_event_max == 6
        assert scheme.stats.events == 1
