"""Unit tests for forward-walk history-file repair."""

from repro.core.ports import RepairPortConfig
from repro.core.repair.forward_walk import ForwardWalkRepair
from tests.core_repair.helpers import SchemeHarness


def make(entries=32, reads=4, writes=2, coalesce=False, **kwargs):
    return ForwardWalkRepair(
        RepairPortConfig(entries, reads, writes), coalesce=coalesce, **kwargs
    )


class TestRepairCorrectness:
    def test_restores_flushed_state(self):
        scheme = make()
        harness = SchemeHarness(scheme)
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=4)
        count_before, _ = harness.state_of(pc)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        wrong_path = [harness.fetch(pc, True, wrong_path=True) for _ in range(3)]
        harness.resolve(trigger, flushed=wrong_path)
        assert harness.state_of(pc) == (count_before, True)

    def test_one_write_per_pc(self):
        """Repair bits: duplicate instances cost no extra writes."""
        scheme = make()
        harness = SchemeHarness(scheme)
        pc = 0x4000
        trigger = harness.fetch(0x9000, False, base_taken=True)
        flushed = [harness.fetch(pc, True, wrong_path=True) for _ in range(6)]
        harness.resolve(trigger, flushed=flushed)
        # One write for the trigger's own correction, one for the PC.
        assert scheme.stats.bht_writes == 2

    def test_without_repair_bits_charges_duplicates(self):
        plain = make()
        nobits = make(use_repair_bits=False)
        for scheme in (plain, nobits):
            harness = SchemeHarness(scheme)
            trigger = harness.fetch(0x9000, False, base_taken=True)
            flushed = [harness.fetch(0x4000, True, wrong_path=True) for _ in range(6)]
            harness.resolve(trigger, flushed=flushed)
        assert nobits.stats.bht_writes > plain.stats.bht_writes

    def test_fresh_allocations_removed(self):
        scheme = make()
        harness = SchemeHarness(scheme)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        ghost = harness.fetch(0x7000, True, wrong_path=True)
        harness.resolve(trigger, flushed=[ghost])
        assert harness.local.bht.find(0x7000) == -1


class TestAvailability:
    def test_per_pc_availability_during_repair(self):
        """Forward walk's twin benefit: repaired/untouched PCs can be
        predicted while the walk is still draining."""
        scheme = make(entries=64, reads=1, writes=1)
        harness = SchemeHarness(scheme)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        flushed = [
            harness.fetch(0x4000 + 16 * i, True, wrong_path=True) for i in range(6)
        ]
        done = scheme.on_mispredict(trigger, flushed, cycle=100)
        assert done > 102
        # The mispredicting PC repairs first: ready at cycle+1.
        assert scheme.can_predict(0x9000, 101)
        # An untouched PC is always available.
        assert scheme.can_predict(0xBEEF, 100)
        # The last walked PC is not ready early on...
        assert not scheme.can_predict(0x4000 + 16 * 5, 101)
        # ...but is once the walk completes.
        assert scheme.can_predict(0x4000 + 16 * 5, done)

    def test_repair_order_is_oldest_first(self):
        scheme = make(entries=64, reads=1, writes=1)
        harness = SchemeHarness(scheme)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        flushed = [
            harness.fetch(0x4000 + 16 * i, True, wrong_path=True) for i in range(4)
        ]
        scheme.on_mispredict(trigger, flushed, cycle=100)
        ready = [scheme._ready[0x4000 + 16 * i] for i in range(4)]
        assert ready == sorted(ready)


class TestCoalescing:
    def test_merged_run_repairs_from_first_entry(self):
        scheme = make(coalesce=True)
        harness = SchemeHarness(scheme)
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=4)
        count_before, _ = harness.state_of(pc)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        run = [harness.fetch(pc, True, wrong_path=True) for _ in range(5)]
        # The run coalesced: at most two OBQ ids among five instances.
        assert len({b.obq_id for b in run}) <= 2
        harness.resolve(trigger, flushed=run)
        assert harness.state_of(pc) == (count_before, True)

    def test_mid_run_mispredict_uses_carried_state(self):
        """An intermediate instance of a merged run recovers from the
        11-bit state it carries, not from the OBQ."""
        scheme = make(coalesce=True)
        harness = SchemeHarness(scheme)
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=4)
        # Three consecutive instances; the middle one mispredicts.
        first = harness.fetch(pc, True)
        middle = harness.fetch(pc, False, base_taken=True)  # actually exits
        last = harness.fetch(pc, True, wrong_path=True)
        assert middle.mispredicted
        harness.resolve(middle, flushed=[last])
        count, dominant = harness.state_of(pc)
        # Pre-middle count advanced by `first`; the exit resets it.
        assert (count, dominant) == (0, True)

    def test_uncheckpointed_trigger_still_self_repairs(self):
        scheme = make(entries=2, coalesce=True)
        harness = SchemeHarness(scheme)
        harness.fetch(0x1000, True)
        harness.fetch(0x2000, True)
        pc = 0x4000
        trigger = harness.fetch(pc, False, base_taken=True)  # overflowed
        assert not trigger.checkpointed
        harness.resolve(trigger)
        # Carried state lets the mispredicting PC recover even so.
        count, _ = harness.state_of(pc)
        assert count == 0 or harness.state_of(pc) is not None
        assert scheme.stats.skipped_events == 0

    def test_plain_mode_skips_uncheckpointed_trigger(self):
        scheme = make(entries=2, coalesce=False)
        harness = SchemeHarness(scheme)
        harness.fetch(0x1000, True)
        harness.fetch(0x2000, True)
        trigger = harness.fetch(0x4000, False, base_taken=True)
        harness.resolve(trigger)
        assert scheme.stats.skipped_events == 1


class TestMultiRepair:
    def test_restart_resets_repair_bits(self):
        scheme = make(entries=64, reads=1, writes=1)
        harness = SchemeHarness(scheme)
        older = harness.fetch(0x9000, False, base_taken=True)
        young = harness.fetch(0x9100, False, base_taken=True)
        flushed_young = [harness.fetch(0x4000, True, wrong_path=True)]
        scheme.on_mispredict(young, flushed_young, cycle=100)
        # The older branch now resolves mispredicted: restart.
        scheme.on_mispredict(older, [], cycle=101)
        assert scheme.stats.restarts == 1
        assert scheme.stats.events == 2

    def test_storage_includes_rob_bits(self):
        scheme = make(entries=32)
        # OBQ (32x76) + 128 repair bits + 224 x (5-bit id + 11-bit ctr).
        harness = SchemeHarness(scheme, entries=128)
        assert scheme.storage_bits() == 32 * 76 + 128 + 224 * 16
        assert scheme.repair_ports == (4, 2)
