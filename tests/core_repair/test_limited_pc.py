"""Unit tests for limited-PC repair."""

import pytest

from repro.core.repair.limited_pc import LimitedPcRepair
from repro.errors import ConfigError
from tests.core_repair.helpers import SchemeHarness


class TestCandidateSelection:
    def test_own_pc_always_first(self):
        scheme = LimitedPcRepair(repair_count=2)
        harness = SchemeHarness(scheme)
        branch = harness.fetch(0x4000, True)
        assert branch.carried is not None
        assert branch.carried[0].pc == 0x4000

    def test_carries_exactly_m_entries(self):
        scheme = LimitedPcRepair(repair_count=4)
        harness = SchemeHarness(scheme)
        for i in range(6):
            harness.fetch(0x1000 + 16 * i, True)
        branch = harness.fetch(0x4000, True)
        assert len(branch.carried) == 4

    def test_utility_candidates_preferred(self):
        scheme = LimitedPcRepair(repair_count=2)
        harness = SchemeHarness(scheme)
        hot = 0x4000
        harness.train_loop(hot, trip=6, executions=8)
        # Make `hot` a recent correct override: local says exit, TAGE
        # says continue, exit happens.
        for _ in range(6):
            harness.resolve(harness.fetch(hot, True))
        save = harness.fetch(hot, False, base_taken=True)
        assert save.local_used and save.local_pred.taken is False
        harness.resolve(save)
        # Now a different branch's carried set should include `hot`.
        for i in range(8):
            harness.fetch(0x1000 + 16 * i, True)
        other = harness.fetch(0x9000, True)
        assert other.carried[1].pc == hot

    def test_recency_backfill(self):
        scheme = LimitedPcRepair(repair_count=3, policy="recency")
        harness = SchemeHarness(scheme)
        harness.fetch(0x1000, True)
        harness.fetch(0x2000, True)
        branch = harness.fetch(0x9000, True)
        carried_pcs = [c.pc for c in branch.carried]
        assert carried_pcs[0] == 0x9000
        assert set(carried_pcs[1:]) == {0x1000, 0x2000}

    def test_missing_entry_recorded_as_absent(self):
        scheme = LimitedPcRepair(repair_count=2)
        harness = SchemeHarness(scheme)
        branch = harness.fetch(0x4000, True)
        assert branch.carried[0].state is None  # fresh allocation

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            LimitedPcRepair(repair_count=0)
        with pytest.raises(ConfigError):
            LimitedPcRepair(write_ports=0)


class TestRepair:
    def test_repairs_carried_pcs_only(self):
        scheme = LimitedPcRepair(repair_count=2)
        harness = SchemeHarness(scheme)
        pc_a, pc_b = 0x4000, 0x5000
        harness.train_loop(pc_a, trip=8, executions=3)
        harness.train_loop(pc_b, trip=8, executions=3)
        # Advance a few iterations so the exit lands at a non-zero count.
        for _ in range(3):
            harness.resolve(harness.fetch(pc_a, True))
        count_b = harness.state_of(pc_b)[0]

        trigger = harness.fetch(pc_a, False, base_taken=True)
        wrong_path = [
            harness.fetch(pc_a, True, wrong_path=True),
            harness.fetch(pc_b, True, wrong_path=True),
            harness.fetch(pc_b, True, wrong_path=True),
        ]
        carried_pcs = {c.pc for c in trigger.carried}
        harness.resolve(trigger, flushed=wrong_path)
        # Own PC repaired (exit resets count)...
        assert harness.state_of(pc_a)[0] == 0
        if pc_b in carried_pcs:
            assert harness.state_of(pc_b)[0] == count_b
        else:
            # ...non-carried pollution stays.
            assert harness.state_of(pc_b)[0] == count_b + 2

    def test_deterministic_duration(self):
        scheme = LimitedPcRepair(repair_count=4, write_ports=2)
        harness = SchemeHarness(scheme)
        # Populate the recency pool so a full 4-PC set is carried.
        for i in range(4):
            harness.fetch(0x1000 + 16 * i, True)
        trigger = harness.fetch(0x4000, False, base_taken=True)
        assert len(trigger.carried) == 4
        done = scheme.on_mispredict(trigger, [], cycle=100)
        assert done == 102  # ceil(4 / 2) cycles, always

    def test_invalidate_others_clears_all_non_repaired(self):
        scheme = LimitedPcRepair(repair_count=2, invalidate_others=True)
        harness = SchemeHarness(scheme)
        for i in range(6):
            harness.resolve(harness.fetch(0x1000 + 16 * i, True))
        trigger = harness.fetch(0x9000, False, base_taken=True)
        carried_pcs = {c.pc for c in trigger.carried}
        harness.resolve(trigger)
        for i in range(6):
            pc = 0x1000 + 16 * i
            slot = harness.local.bht.find(pc)
            if pc not in carried_pcs and slot >= 0:
                assert not harness.local.bht.is_valid(slot)

    def test_unrepaired_stat(self):
        scheme = LimitedPcRepair(repair_count=1)
        harness = SchemeHarness(scheme)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        flushed = [harness.fetch(0x4000 + 16 * i, True, wrong_path=True) for i in range(3)]
        harness.resolve(trigger, flushed=flushed)
        assert scheme.stats.unrepaired == 3


class TestSqVariant:
    def test_checkpoints_into_queue(self):
        scheme = LimitedPcRepair(repair_count=4, sq_entries=8)
        harness = SchemeHarness(scheme)
        branch = harness.fetch(0x4000, True)
        assert branch.carried is None
        assert branch.snapshot_id is not None

    def test_overflow_skips_repair(self):
        scheme = LimitedPcRepair(repair_count=2, sq_entries=1)
        harness = SchemeHarness(scheme)
        harness.fetch(0x1000, True)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        assert trigger.snapshot_id is None
        harness.resolve(trigger)
        assert scheme.stats.skipped_events == 1

    def test_sq_repair_restores_states(self):
        scheme = LimitedPcRepair(repair_count=2, sq_entries=16)
        harness = SchemeHarness(scheme)
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=3)
        for _ in range(3):
            harness.resolve(harness.fetch(pc, True))
        trigger = harness.fetch(pc, False, base_taken=True)
        wrong_path = [harness.fetch(pc, True, wrong_path=True)]
        harness.resolve(trigger, flushed=wrong_path)
        assert harness.state_of(pc)[0] == 0  # exit applied after restore

    def test_storage_modes_differ(self):
        carried = LimitedPcRepair(repair_count=2)
        queued = LimitedPcRepair(repair_count=8, sq_entries=32)
        # Carried: 224 ROB entries x 2 PCs x 24 bits.
        assert carried.storage_bits() == 224 * 2 * 24
        # SQ: 32 x 8 x 24 + ROB id bits — about 0.77KB, paper says the
        # 8PC/32-entry SQ needs ~0.33KB of queue storage plus ids.
        assert queued.storage_bits() == 32 * 8 * 24 + 224 * 5
