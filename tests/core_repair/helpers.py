"""Driving harness for repair-scheme tests.

Drives a :class:`StandardLocalUnit` (loop predictor + scheme) the way
the pipeline would, but with full manual control over fetch order,
wrong-path marking, cycles, and misprediction injection — so each test
can build the exact speculative-state scenario it wants to see repaired.
"""

from __future__ import annotations

from repro.core.inflight import InflightBranch
from repro.core.loop_predictor import (
    LoopPredictor,
    LoopPredictorConfig,
    pack_state,
    unpack_state,
)
from repro.core.unit import StandardLocalUnit
from repro.predictors.base import Prediction
from repro.trace.records import BranchRecord

__all__ = ["SchemeHarness", "pack_state", "unpack_state"]


class SchemeHarness:
    """In-order driver for one local unit."""

    def __init__(self, scheme, entries: int = 64, confidence_threshold: int = 3) -> None:
        self.local = LoopPredictor(
            LoopPredictorConfig.entries(entries, confidence_threshold)
        )
        self.unit = StandardLocalUnit(self.local, scheme)
        self.scheme = scheme
        self.cycle = 0
        self._uid = 0

    # ------------------------------------------------------------- #

    def train_loop(self, pc: int, trip: int, executions: int) -> None:
        """Teach the predictor a clean loop (fetch/resolve/retire each)."""
        for _ in range(executions):
            for taken in [True] * trip + [False]:
                branch = self.fetch(pc, taken)
                self.resolve(branch)
                self.retire(branch)

    def fetch(
        self,
        pc: int,
        actual_taken: bool,
        base_taken: bool | None = None,
        wrong_path: bool = False,
        cycle: int | None = None,
    ) -> InflightBranch:
        """Fetch one conditional branch through the unit."""
        if cycle is not None:
            self.cycle = cycle
        record = BranchRecord(pc=pc, target=pc + 64, taken=actual_taken, inst_gap=2)
        branch = InflightBranch(
            uid=self._uid,
            record=record,
            wrong_path=wrong_path,
            fetch_cycle=self.cycle,
            resolve_cycle=self.cycle + 20,
        )
        self._uid += 1
        base = base_taken if base_taken is not None else actual_taken
        branch.tage_pred = Prediction(pc=pc, taken=base)
        self.unit.predict(branch, base, self.cycle)
        self.cycle += 1
        return branch

    def resolve(self, branch: InflightBranch, flushed=(), cycle: int | None = None) -> None:
        """Resolve a branch (training plus mispredict repair)."""
        self.unit.resolve(
            branch, list(flushed), cycle if cycle is not None else branch.resolve_cycle
        )

    def retire(self, branch: InflightBranch) -> None:
        self.unit.retire(branch, branch.resolve_cycle + 5)

    # ------------------------------------------------------------- #

    def state_of(self, pc: int) -> tuple[int, bool] | None:
        """(count, dominant) currently in the BHT, or None when absent."""
        slot = self.local.bht.find(pc)
        if slot < 0:
            return None
        return unpack_state(self.local.bht.state_at(slot))

    def set_state(self, pc: int, count: int, dominant: bool = True) -> None:
        slot = self.local.bht.find(pc)
        assert slot >= 0, f"pc {pc:#x} not in BHT"
        self.local.bht.set_state(slot, pack_state(count, dominant))
