"""Unit tests for snapshot-queue repair."""

from repro.core.ports import RepairPortConfig
from repro.core.repair.snapshot_repair import SnapshotRepair
from tests.core_repair.helpers import SchemeHarness


def make(entries=32, reads=8, writes=8):
    return SnapshotRepair(RepairPortConfig(entries, reads, writes))


class TestSnapshotRepair:
    def test_snapshot_taken_before_update(self):
        scheme = make()
        harness = SchemeHarness(scheme)
        pc = 0x4000
        branch = harness.fetch(pc, True)
        snap = scheme.queue.find(branch.snapshot_id)
        # The snapshot pre-dates the branch's own allocation.
        pcs, _, _ = snap.payload
        assert pc not in pcs

    def test_restore_reverts_everything(self):
        scheme = make()
        harness = SchemeHarness(scheme)
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=4)
        count_before, _ = harness.state_of(pc)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        wrong_path = [harness.fetch(pc, True, wrong_path=True) for _ in range(4)]
        ghost = harness.fetch(0x7000, True, wrong_path=True)
        harness.resolve(trigger, flushed=wrong_path + [ghost])
        assert harness.state_of(pc) == (count_before, True)
        # Whole-table restore also removes fresh wrong-path allocations
        # without needing per-branch records.
        assert harness.local.bht.find(0x7000) == -1

    def test_repair_window_sized_by_full_table(self):
        scheme = make(entries=32, reads=8, writes=8)
        harness = SchemeHarness(scheme, entries=64)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        done = scheme.on_mispredict(trigger, [], cycle=100)
        # 64 entries through 8 write ports = 8 cycles.
        assert done == 108
        assert not scheme.can_predict(0xBEEF, 104)
        assert scheme.can_predict(0xBEEF, 108)

    def test_dropped_snapshot_skips_repair(self):
        scheme = make(entries=2)
        harness = SchemeHarness(scheme)
        harness.fetch(0x1000, True)
        harness.fetch(0x2000, True)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        assert trigger.snapshot_id is None
        pc = 0x4000
        ghost = harness.fetch(pc, True, wrong_path=True)
        harness.resolve(trigger, flushed=[ghost])
        assert scheme.stats.skipped_events == 1
        assert harness.local.bht.find(pc) >= 0  # pollution kept

    def test_retire_frees_snapshots(self):
        scheme = make(entries=2)
        harness = SchemeHarness(scheme)
        first = harness.fetch(0x1000, True)
        harness.fetch(0x2000, True)
        harness.retire(first)
        assert harness.fetch(0x3000, True).snapshot_id is not None

    def test_storage_dwarfs_history_files(self):
        scheme = make(entries=32)
        harness = SchemeHarness(scheme, entries=128)
        # 32 snapshots x 128 entries x (8 tag + 12 state + 1 valid).
        assert scheme.storage_bits() == 32 * 128 * 21
        assert scheme.storage_kb() > 10.0
