"""Unit tests for no-repair and update-at-retire."""

from repro.core.repair.no_repair import NoRepair
from repro.core.repair.retire_update import RetireUpdate
from tests.core_repair.helpers import SchemeHarness


class TestNoRepair:
    def test_pollution_survives_flush(self):
        harness = SchemeHarness(NoRepair())
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=4)
        count_before, _ = harness.state_of(pc)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        wrong_path = [harness.fetch(pc, True, wrong_path=True) for _ in range(3)]
        harness.resolve(trigger, flushed=wrong_path)
        count_after, _ = harness.state_of(pc)
        assert count_after == count_before + 3  # corruption kept

    def test_stats_track_unrepaired(self):
        scheme = NoRepair()
        harness = SchemeHarness(scheme)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        flushed = [harness.fetch(0x4000, True, wrong_path=True) for _ in range(4)]
        harness.resolve(trigger, flushed=flushed)
        assert scheme.stats.unrepaired == 4
        assert scheme.stats.skipped_events == 1

    def test_never_busy(self):
        scheme = NoRepair()
        harness = SchemeHarness(scheme)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        harness.resolve(trigger)
        assert scheme.can_predict(0x9000, trigger.resolve_cycle)

    def test_state_recovers_at_direction_flip(self):
        """The paper's self-healing: a (predicted) flip reinitialises the
        counter, so corruption is temporary."""
        harness = SchemeHarness(NoRepair())
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=4)
        # Corrupt the count up to the learned trip: the next prediction
        # is the exit, whose speculative update resets the counter.
        harness.set_state(pc, 8, True)
        branch = harness.fetch(pc, actual_taken=False)
        assert branch.local_used and branch.local_pred.taken is False
        count, _ = harness.state_of(pc)
        assert count == 0


class TestRetireUpdate:
    def test_no_speculative_update_at_fetch(self):
        harness = SchemeHarness(RetireUpdate())
        pc = 0x4000
        branch = harness.fetch(pc, True)
        assert harness.local.bht.find(pc) == -1
        assert branch.spec is None

    def test_bht_updated_only_at_retire(self):
        harness = SchemeHarness(RetireUpdate())
        pc = 0x4000
        branch = harness.fetch(pc, True)
        harness.resolve(branch)
        assert harness.local.bht.find(pc) == -1
        harness.retire(branch)
        assert harness.state_of(pc) == (1, True)

    def test_state_lags_in_flight_instances(self):
        """The staleness that costs this scheme its gains (§6.2)."""
        harness = SchemeHarness(RetireUpdate())
        pc = 0x4000
        in_flight = [harness.fetch(pc, True) for _ in range(5)]
        # Five fetched instances, none retired: BHT sees nothing.
        assert harness.local.bht.find(pc) == -1
        for branch in in_flight[:2]:
            harness.retire(branch)
        assert harness.state_of(pc) == (2, True)

    def test_learns_trips_from_architectural_stream(self):
        harness = SchemeHarness(RetireUpdate())
        pc = 0x4000
        for _ in range(6):
            for taken in [True] * 5 + [False]:
                branch = harness.fetch(pc, taken)
                harness.resolve(branch)
                harness.retire(branch)
        entry = harness.local.pt.lookup(pc)
        assert entry is not None
        assert entry.trip == 5
        assert entry.confident

    def test_mispredict_is_noop_for_state(self):
        harness = SchemeHarness(RetireUpdate())
        pc = 0x4000
        branch = harness.fetch(pc, False, base_taken=True)
        before = harness.local.bht.snapshot()
        harness.resolve(branch)
        assert harness.local.bht.restore_snapshot(before) == 0
