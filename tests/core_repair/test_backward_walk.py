"""Unit tests for backward-walk history-file repair."""

from repro.core.ports import RepairPortConfig
from repro.core.repair.backward_walk import BackwardWalkRepair
from tests.core_repair.helpers import SchemeHarness


def make(entries=32, reads=4, writes=4):
    return BackwardWalkRepair(RepairPortConfig(entries, reads, writes))


class TestCheckpointing:
    def test_every_branch_gets_an_entry(self):
        scheme = make()
        harness = SchemeHarness(scheme)
        branches = [harness.fetch(0x4000 + 16 * i, True) for i in range(5)]
        assert all(b.obq_id is not None for b in branches)
        assert all(b.checkpointed for b in branches)

    def test_overflow_leaves_branch_uncheckpointed(self):
        scheme = make(entries=2)
        harness = SchemeHarness(scheme)
        branches = [harness.fetch(0x4000 + 16 * i, True) for i in range(4)]
        assert branches[2].obq_id is None
        assert not branches[2].checkpointed
        assert scheme.stats.uncheckpointed == 2

    def test_retire_frees_entries(self):
        scheme = make(entries=2)
        harness = SchemeHarness(scheme)
        first = harness.fetch(0x4000, True)
        harness.fetch(0x4010, True)
        harness.retire(first)
        assert harness.fetch(0x4020, True).checkpointed


class TestRepair:
    def test_restores_flushed_state(self):
        scheme = make()
        harness = SchemeHarness(scheme)
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=4)
        count_before, _ = harness.state_of(pc)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        wrong_path = [harness.fetch(pc, True, wrong_path=True) for _ in range(3)]
        harness.resolve(trigger, flushed=wrong_path)
        count_after, _ = harness.state_of(pc)
        assert count_after == count_before

    def test_globally_busy_during_repair(self):
        scheme = make(entries=32, reads=2, writes=2)
        harness = SchemeHarness(scheme)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        flushed = [
            harness.fetch(0x4000 + 16 * i, True, wrong_path=True) for i in range(8)
        ]
        done = scheme.on_mispredict(trigger, flushed, cycle=100)
        assert done > 100
        # No PC is usable until the whole walk completes — including
        # ones the walk never touches.
        assert not scheme.can_predict(0xBEEF, 100)
        assert not scheme.can_predict(0x4000, done - 1)
        assert scheme.can_predict(0x4000, done)

    def test_duplicate_instances_cost_duplicate_writes(self):
        scheme = make()
        harness = SchemeHarness(scheme)
        pc = 0x4000
        trigger = harness.fetch(0x9000, False, base_taken=True)
        flushed = [harness.fetch(pc, True, wrong_path=True) for _ in range(6)]
        harness.resolve(trigger, flushed=flushed)
        # 6 same-PC entries + the trigger's walk entry + own correction.
        assert scheme.stats.bht_writes == 8

    def test_uncheckpointed_trigger_skips_repair(self):
        scheme = make(entries=2)
        harness = SchemeHarness(scheme)
        harness.fetch(0x4000, True)
        harness.fetch(0x4010, True)
        trigger = harness.fetch(0x9000, False, base_taken=True)  # overflowed
        assert not trigger.checkpointed
        ghost = harness.fetch(0x7000, True, wrong_path=True)
        harness.resolve(trigger, flushed=[ghost])
        assert scheme.stats.skipped_events == 1
        # The squashed allocation survives, unrepaired.
        assert harness.local.bht.find(0x7000) >= 0

    def test_flush_releases_obq_entries(self):
        scheme = make(entries=4)
        harness = SchemeHarness(scheme)
        trigger = harness.fetch(0x9000, False, base_taken=True)
        for i in range(3):
            harness.fetch(0x4000 + 16 * i, True, wrong_path=True)
        assert len(scheme.obq) == 4
        harness.resolve(
            trigger,
            flushed=[],  # scheme flushes by uid regardless
        )
        assert len(scheme.obq) == 1

    def test_restart_counted_on_overlapping_repairs(self):
        scheme = make(entries=32, reads=1, writes=1)
        harness = SchemeHarness(scheme)
        young = harness.fetch(0x9000, False, base_taken=True)
        flushed = [harness.fetch(0x4000 + 16 * i, True, wrong_path=True) for i in range(6)]
        done = scheme.on_mispredict(young, flushed, cycle=100)
        assert done > 101
        older = harness.fetch(0x9100, False, base_taken=True)
        scheme.on_mispredict(older, [], cycle=101)
        assert scheme.stats.restarts == 1

    def test_storage_is_obq_only(self):
        scheme = make(entries=32)
        assert scheme.storage_bits() == 32 * 76
        assert scheme.repair_ports == (4, 4)
