"""Unit tests for the IMLI comparison unit."""

import pytest

from repro.core.imli import ImliConfig, ImliUnit
from repro.core.inflight import InflightBranch
from repro.errors import ConfigError
from repro.predictors.base import Prediction
from repro.trace.records import BranchRecord


class ImliHarness:
    def __init__(self, config=None):
        self.unit = ImliUnit(config)
        self._uid = 0
        self.cycle = 0

    def fetch(self, pc, actual_taken, base_taken=None, backward=True, wrong_path=False):
        target = pc - 64 if backward else pc + 64
        record = BranchRecord(pc=pc, target=target, taken=actual_taken, inst_gap=2)
        branch = InflightBranch(
            uid=self._uid, record=record, wrong_path=wrong_path,
            fetch_cycle=self.cycle, resolve_cycle=self.cycle + 20,
        )
        self._uid += 1
        base = base_taken if base_taken is not None else actual_taken
        branch.tage_pred = Prediction(pc=pc, taken=base)
        self.unit.predict(branch, base, self.cycle)
        self.cycle += 1
        return branch

    def resolve(self, branch, flushed=()):
        self.unit.resolve(branch, list(flushed), branch.resolve_cycle)

    def run_loop(self, pc, trip, executions, reset_pc=0x8888):
        """Run loop executions, separated by another loop's back-edge.

        Real programs reset IMLIcount between executions because some
        *other* inner loop runs in between; without the reset the
        counter grows monotonically and (pc, count) indices never
        repeat.
        """
        for _ in range(executions):
            for taken in [True] * trip + [False]:
                self.resolve(self.fetch(pc, taken, backward=True))
            self.resolve(self.fetch(reset_pc, True, backward=True))


class TestImliCounter:
    def test_counts_backward_taken_reexecution(self):
        harness = ImliHarness()
        pc = 0x4000
        for _ in range(5):
            harness.fetch(pc, True, backward=True)
        assert harness.unit._count == 5

    def test_forward_branches_do_not_touch_counter(self):
        harness = ImliHarness()
        harness.fetch(0x4000, True, backward=True)
        harness.fetch(0x4000, True, backward=True)
        count = harness.unit._count
        harness.fetch(0x5000, True, backward=False)
        harness.fetch(0x6000, False, backward=False)
        assert harness.unit._count == count

    def test_new_backward_branch_resets(self):
        harness = ImliHarness()
        for _ in range(4):
            harness.fetch(0x4000, True, backward=True)
        harness.fetch(0x9000, True, backward=True)
        assert harness.unit._count == 1
        assert harness.unit._last_backward == 0x9000

    def test_counter_saturates(self):
        harness = ImliHarness(ImliConfig(max_count=3))
        for _ in range(10):
            harness.fetch(0x4000, True, backward=True)
        assert harness.unit._count == 3


class TestImliPrediction:
    def test_learns_inner_loop_exit(self):
        harness = ImliHarness()
        pc = 0x4000
        harness.run_loop(pc, trip=7, executions=12)
        # Next execution: run to the exit point and check the override.
        for _ in range(7):
            harness.resolve(harness.fetch(pc, True))
        branch = harness.fetch(pc, False, base_taken=True)
        assert branch.local_used
        assert branch.local_pred.taken is False

    def test_repair_is_single_register_restore(self):
        harness = ImliHarness()
        pc = 0x4000
        harness.run_loop(pc, trip=9, executions=5)
        for _ in range(3):
            harness.resolve(harness.fetch(pc, True))
        count_before = harness.unit._count
        # A misprediction with wrong-path pollution of the counter.
        trigger = harness.fetch(0x9000, False, base_taken=True, backward=False)
        for _ in range(4):
            harness.fetch(pc, True, wrong_path=True)
        assert harness.unit._count == count_before + 4
        harness.resolve(trigger)
        assert harness.unit._count == count_before

    def test_mispredicting_backward_branch_updates_counter(self):
        harness = ImliHarness()
        pc = 0x4000
        harness.run_loop(pc, trip=9, executions=3)
        for _ in range(4):
            harness.resolve(harness.fetch(pc, True))
        count = harness.unit._count
        # Predicted exit, actually continues: restore then re-apply.
        branch = harness.fetch(pc, True, base_taken=False)
        harness.resolve(branch)
        assert harness.unit._count == count + 1

    def test_no_checkpoint_structures(self):
        unit = ImliUnit()
        assert unit.storage_bits() < 2 * 8192  # under 2KB, table-dominated

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ImliConfig(log_entries=2)
        with pytest.raises(ConfigError):
            ImliConfig(counter_bits=1)
        with pytest.raises(ConfigError):
            ImliConfig(confidence_margin=0)

    def test_wrong_path_branches_do_not_train(self):
        harness = ImliHarness()
        wp = harness.fetch(0x4000, True, wrong_path=True)
        before = list(harness.unit._table)
        harness.resolve(wp)
        assert harness.unit._table == before
