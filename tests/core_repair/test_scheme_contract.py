"""Cross-scheme contract tests.

Every repair scheme, whatever its policy, must satisfy the same small
contract with the pipeline: survive arbitrary event sequences, keep its
checkpoint structures consistent with retirement/flush, report sane
statistics, and never *corrupt* state it claims to have repaired.
These run the identical scenario battery across all schemes.
"""

import pytest

from repro.core.ports import RepairPortConfig
from repro.core.repair import (
    BackwardWalkRepair,
    ForwardWalkRepair,
    LimitedPcRepair,
    NoRepair,
    PerfectRepair,
    RetireUpdate,
    SnapshotRepair,
)
from tests.core_repair.helpers import SchemeHarness

SCHEME_FACTORIES = {
    "perfect": PerfectRepair,
    "no-repair": NoRepair,
    "retire-update": RetireUpdate,
    "backward": lambda: BackwardWalkRepair(RepairPortConfig(16, 4, 4)),
    "forward": lambda: ForwardWalkRepair(RepairPortConfig(16, 4, 2)),
    "forward-coalesce": lambda: ForwardWalkRepair(
        RepairPortConfig(16, 4, 2), coalesce=True
    ),
    "snapshot": lambda: SnapshotRepair(RepairPortConfig(16, 8, 8)),
    "limited-2pc": lambda: LimitedPcRepair(2),
    "limited-sq": lambda: LimitedPcRepair(4, write_ports=4, sq_entries=8),
}


@pytest.fixture(params=sorted(SCHEME_FACTORIES))
def harness(request):
    return SchemeHarness(SCHEME_FACTORIES[request.param]())


class TestSchemeContract:
    def test_survives_mispredict_with_no_flushed(self, harness):
        branch = harness.fetch(0x4000, False, base_taken=True)
        harness.resolve(branch)  # must not raise
        assert harness.scheme.stats.events == 1

    def test_survives_repeated_mispredicts(self, harness):
        for i in range(20):
            branch = harness.fetch(0x4000 + 16 * (i % 3), False, base_taken=True)
            ghost = harness.fetch(0x9000, True, wrong_path=True)
            harness.resolve(branch, flushed=[ghost])
        assert harness.scheme.stats.events == 20

    def test_retire_heavy_sequence(self, harness):
        branches = [harness.fetch(0x4000 + 16 * i, True) for i in range(30)]
        for branch in branches:
            harness.resolve(branch)
            harness.retire(branch)

    def test_interleaved_fetch_resolve_retire_mispredict(self, harness):
        inflight = []
        for i in range(60):
            actual = (i % 7) != 0
            predicted = (i % 11) != 0
            branch = harness.fetch(0x4000 + 16 * (i % 5), actual, base_taken=predicted)
            inflight.append(branch)
            if len(inflight) >= 6:
                oldest = inflight.pop(0)
                flushed = inflight if oldest.mispredicted else []
                harness.resolve(oldest, flushed=list(flushed))
                if oldest.mispredicted:
                    inflight.clear()
                else:
                    harness.retire(oldest)

    def test_stats_are_consistent(self, harness):
        for i in range(25):
            branch = harness.fetch(0x4000 + 16 * (i % 4), i % 3 != 0, base_taken=True)
            harness.resolve(branch)
            harness.retire(branch)
        stats = harness.scheme.stats
        assert stats.events >= 0
        assert stats.bht_writes >= 0
        assert stats.writes_per_event_max * max(stats.events, 1) >= (
            stats.writes_per_event_sum
        )

    def test_availability_is_eventually_restored(self, harness):
        branch = harness.fetch(0x4000, False, base_taken=True)
        flushed = [
            harness.fetch(0x5000 + 16 * i, True, wrong_path=True) for i in range(8)
        ]
        done = harness.scheme.on_mispredict(branch, flushed, cycle=1000)
        assert done >= 1000
        assert harness.scheme.can_predict(0x4000, done + 1)
        assert harness.scheme.can_update(0x4000, done + 1)


class TestRepairingSchemesRestoreOwnPc:
    """Schemes that claim to repair must land the resolved state on the
    mispredicting branch's own entry."""

    REPAIRING = ("perfect", "backward", "forward", "forward-coalesce",
                 "snapshot", "limited-2pc", "limited-sq")

    @pytest.mark.parametrize("name", REPAIRING)
    def test_own_pc_correct_after_exit_mispredict(self, name):
        harness = SchemeHarness(SCHEME_FACTORIES[name]())
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=4)
        for _ in range(3):
            branch = harness.fetch(pc, True)
            harness.resolve(branch)
            harness.retire(branch)
        # Mispredicted exit: the entry must read (count 0, dominant T).
        branch = harness.fetch(pc, False, base_taken=True)
        assert branch.mispredicted
        harness.resolve(branch)
        assert harness.state_of(pc) == (0, True)

    @pytest.mark.parametrize("name", REPAIRING)
    def test_wrong_path_pollution_of_own_pc_removed(self, name):
        harness = SchemeHarness(SCHEME_FACTORIES[name]())
        pc = 0x4000
        harness.train_loop(pc, trip=8, executions=4)
        for _ in range(3):
            branch = harness.fetch(pc, True)
            harness.resolve(branch)
            harness.retire(branch)
        trigger = harness.fetch(pc, False, base_taken=True)
        wrong_path = [harness.fetch(pc, True, wrong_path=True) for _ in range(3)]
        harness.resolve(trigger, flushed=wrong_path)
        count, dominant = harness.state_of(pc)
        assert dominant is True
        assert count == 0  # exit applied on top of the restored state
