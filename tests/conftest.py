"""Shared test fixtures.

Traces used across tests are small and deterministic; anything that
runs the full pipeline uses a few thousand branches at most so the unit
suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.trace.records import BranchKind, BranchRecord
from repro.workloads.spec import WorkloadParams, WorkloadSpec


def make_branch(
    pc: int = 0x1000,
    taken: bool = True,
    kind: BranchKind = BranchKind.COND,
    inst_gap: int = 4,
    load_addr: int = 0,
    depends_on_load: bool = False,
) -> BranchRecord:
    """Convenience branch-record builder used throughout the tests."""
    return BranchRecord(
        pc=pc,
        target=pc + 64 if not taken else pc - 64 if pc >= 64 else pc + 64,
        taken=taken,
        kind=kind,
        inst_gap=inst_gap,
        load_addr=load_addr,
        depends_on_load=depends_on_load,
    )


def loop_trace(pc: int, trip: int, executions: int, gap: int = 3) -> list[BranchRecord]:
    """A pure loop-branch trace: ``trip`` taken then one not-taken."""
    records: list[BranchRecord] = []
    for _ in range(executions):
        for _ in range(trip):
            records.append(make_branch(pc=pc, taken=True, inst_gap=gap))
        records.append(make_branch(pc=pc, taken=False, inst_gap=gap))
    return records


@pytest.fixture
def tiny_spec() -> WorkloadSpec:
    """A minimal workload spec for fast end-to-end runs."""
    params = WorkloadParams(
        n_loops=3,
        n_tight_loops=2,
        n_forward_loops=2,
        n_patterns=4,
        n_biased=4,
        n_global=2,
        trip_min=4,
        trip_max=16,
        working_set_kb=64,
    )
    return WorkloadSpec(name="tiny", category="test", seed=7, params=params)


@pytest.fixture
def tiny_trace(tiny_spec):
    from repro.workloads.generators.engine import generate_trace

    return generate_trace(tiny_spec, 3000)
