"""Ablations of the design choices DESIGN.md calls out.

Each ablation isolates one mechanism:

* wrong-path fetch on/off — the corruption source: with it off, even
  no-repair behaves like perfect repair;
* forward-walk repair bits — the duplicate-write elimination;
* OBQ coalescing at small OBQ sizes — checkpoint-pressure relief;
* limited-PC candidate policy — utility vs. recency vs. random;
* limited-PC non-repaired policy — leave-as-is vs. invalidate.
"""

from __future__ import annotations

from repro.harness.figures.common import BASELINE_SYSTEM
from repro.harness.report import format_table
from repro.harness.runner import pair_results, run_matrix, select_workloads
from repro.harness.systems import SystemConfig
from repro.metrics.aggregate import overall
from repro.pipeline.config import PipelineConfig


def _gain(paired, name):
    results = paired.get(name, [])
    return overall(list(results)).mean_ipc_gain


def _sweep(systems, scale, pipeline=None):
    workloads = select_workloads(scale)
    results = run_matrix(
        workloads, [BASELINE_SYSTEM, *systems], scale, pipeline=pipeline
    )
    return pair_results(results, BASELINE_SYSTEM.name)


def test_ablation_wrong_path(benchmark, scale):
    """No wrong path => nothing corrupts => no-repair ~= perfect."""
    systems = [
        SystemConfig(name="no-repair", scheme="none"),
        SystemConfig(name="perfect-repair", scheme="perfect"),
    ]

    def run():
        with_wp = _sweep(systems, scale)
        without_wp = _sweep(
            systems, scale, pipeline=PipelineConfig(wrong_path=False)
        )
        return with_wp, without_wp

    with_wp, without_wp = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [
        (
            name,
            f"{_gain(with_wp, name) * 100:+.2f}%",
            f"{_gain(without_wp, name) * 100:+.2f}%",
        )
        for name in ("no-repair", "perfect-repair")
    ]
    print()
    print(format_table(["system", "wrong-path ON", "wrong-path OFF"], rows,
                       "Ablation: wrong-path fetch"))
    # Without wrong-path pollution, no-repair recovers most of the gap
    # to perfect repair.
    gap_on = _gain(with_wp, "perfect-repair") - _gain(with_wp, "no-repair")
    gap_off = _gain(without_wp, "perfect-repair") - _gain(without_wp, "no-repair")
    assert gap_off < gap_on


def test_ablation_repair_bits(benchmark, scale):
    """Repair bits eliminate duplicate writes, shortening repair."""
    systems = [
        SystemConfig(name="fwd-bits", scheme="forward", ports="32-4-2"),
        SystemConfig(
            name="fwd-nobits", scheme="forward", ports="32-4-2", use_repair_bits=False
        ),
    ]
    paired = benchmark.pedantic(_sweep, args=(systems, scale), iterations=1, rounds=1)
    with_bits = _gain(paired, "fwd-bits")
    without_bits = _gain(paired, "fwd-nobits")
    print(f"\nrepair bits: with {with_bits:+.2%}, without {without_bits:+.2%}")
    assert with_bits >= without_bits - 0.01


def test_ablation_coalescing(benchmark, scale):
    """Coalescing relieves OBQ pressure most at small OBQ sizes."""
    systems = []
    for entries in (16, 32):
        for coalesce in (False, True):
            tag = "coal" if coalesce else "plain"
            systems.append(
                SystemConfig(
                    name=f"fwd-{entries}-{tag}",
                    scheme="forward",
                    ports=f"{entries}-4-2",
                    coalesce=coalesce,
                )
            )
    paired = benchmark.pedantic(_sweep, args=(systems, scale), iterations=1, rounds=1)
    rows = []
    for entries in (16, 32):
        plain = _gain(paired, f"fwd-{entries}-plain")
        coal = _gain(paired, f"fwd-{entries}-coal")
        rows.append((entries, f"{plain * 100:+.2f}%", f"{coal * 100:+.2f}%"))
    print()
    print(format_table(["OBQ entries", "plain", "coalescing"], rows,
                       "Ablation: OBQ coalescing"))
    # Coalescing should not hurt at the pressured 16-entry size.
    assert _gain(paired, "fwd-16-coal") >= _gain(paired, "fwd-16-plain") - 0.01


def test_ablation_limited_policy(benchmark, scale):
    """Utility-aware candidate selection beats recency beats random."""
    systems = [
        SystemConfig(name="lim-utility", scheme="limited", repair_count=2, policy="utility"),
        SystemConfig(name="lim-recency", scheme="limited", repair_count=2, policy="recency"),
        SystemConfig(name="lim-random", scheme="limited", repair_count=2, policy="random"),
    ]
    paired = benchmark.pedantic(_sweep, args=(systems, scale), iterations=1, rounds=1)
    utility = _gain(paired, "lim-utility")
    recency = _gain(paired, "lim-recency")
    random_pick = _gain(paired, "lim-random")
    print(
        f"\nlimited-PC policy: utility {utility:+.2%}, recency {recency:+.2%}, "
        f"random {random_pick:+.2%}"
    )
    assert utility >= random_pick - 0.005


def test_ablation_limited_invalidate(benchmark, scale):
    """Leaving non-repaired PCs valid beats blanket invalidation."""
    systems = [
        SystemConfig(name="lim-leave", scheme="limited", repair_count=4, limited_write_ports=4),
        SystemConfig(
            name="lim-inv",
            scheme="limited",
            repair_count=4,
            limited_write_ports=4,
            invalidate_others=True,
        ),
    ]
    paired = benchmark.pedantic(_sweep, args=(systems, scale), iterations=1, rounds=1)
    leave = _gain(paired, "lim-leave")
    invalidate = _gain(paired, "lim-inv")
    print(f"\nnon-repaired policy: leave {leave:+.2%}, invalidate {invalidate:+.2%}")
    # Paper §3.3: leave-as-is is the better policy.
    assert leave >= invalidate - 0.005
