"""Table 3 bench: summary of all repair techniques.

Expected shape (paper, ordering by IPC gain): no-repair and the simple
prior techniques at the bottom, walk-based repair in the middle,
forward walk (plus coalescing) close to perfect repair at the top, all
with small storage adders over the 7.9KB predictor pair.
"""

from __future__ import annotations

from conftest import run_figure


def test_tab03_summary(benchmark, scale):
    figure = run_figure(benchmark, "tab3", scale)
    rows = figure.data["rows"]

    perfect = rows["perfect-repair"]
    forward = rows["forward-walk-coalesce"]
    backward = rows["backward-walk"]
    none = rows["no-repair"]

    # The headline claim: forward walk retains most of the perfect
    # gains, prior walk-based repair clearly less, no-repair none.
    assert perfect["ipc_gain"] > 0.0
    assert forward["retained"] > backward["retained"]
    assert backward["retained"] > none["retained"]
    assert forward["retained"] > 0.4

    # Storage sanity: repair adders are small next to the snapshot
    # scheme's checkpoint budget.
    assert rows["forward-walk"]["storage_kb"] < rows["snapshot"]["storage_kb"]
