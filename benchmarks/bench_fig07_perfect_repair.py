"""Figure 7 bench: perfect-repair potential of CBPw-Loop{64,128,256}.

Expected shape (paper): ~28-31% MPKI reduction and ~3.6-4% IPC gain,
mildly increasing with table size; the S-curve spans from ~0 to
strongly positive.
"""

from __future__ import annotations

from conftest import run_figure


def test_fig07_perfect_repair(benchmark, scale):
    figure = run_figure(benchmark, "fig7", scale)
    overall_mpki = figure.data["overall_mpki"]
    overall_ipc = figure.data["overall_ipc"]
    # Substantial MPKI reduction at every size, positive IPC gains.
    for entries in (64, 128, 256):
        assert overall_mpki[entries] > 0.10
        assert overall_ipc[entries] > 0.0
    # Bigger tables never hurt much (small-sample slack allowed).
    assert overall_mpki[256] >= overall_mpki[64] - 0.05
    # The S-curve has a strongly positive right tail.
    gains = [gain for _, gain in figure.data["scurve"]]
    assert max(gains) > 0.01
