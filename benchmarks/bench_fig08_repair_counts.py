"""Figure 8 bench: repairs required per misprediction.

Expected shape (paper): several PCs need repairing on an average
misprediction (avg ~5, workload averages up to ~16) with large worst
cases — repair is not a one-write fix.
"""

from __future__ import annotations

from conftest import run_figure


def test_fig08_repair_counts(benchmark, scale):
    figure = run_figure(benchmark, "fig8", scale)
    assert figure.data["suite_mean"] > 1.5, "repair demand should exceed one PC"
    assert figure.data["suite_max"] >= 8, "worst case should be many writes"
