"""Figure 12 bench: multi-stage prediction with split BHT.

Expected shape (paper): both PT variants land below forward walk (the
deferred-override resteer and half-size tables cost gains) but remain
clearly positive, with no extra BHT ports needed for repair.
"""

from __future__ import annotations

from conftest import run_figure


def test_fig12_multistage(benchmark, scale):
    figure = run_figure(benchmark, "fig12", scale)
    retained = figure.data["retained"]
    assert retained["split-bht-shared-pt"] > 0.0
    # The split-PT variant trails the shared-PT one (paper's ordering);
    # in this reproduction it trails by more, so only bound the gap.
    assert retained["split-bht-split-pt"] >= retained["split-bht-shared-pt"] - 0.6
    # Forward walk stays the better single-stage design.
    assert retained["forward-walk"] >= retained["split-bht-shared-pt"] - 0.15
