"""Extension: CBPw-Loop + repair vs. IMLI (Seznec et al., ref [33]).

The paper positions per-PC local state against IMLI's single global
inner-most-loop counter.  Expected shape: IMLI needs no repair
machinery and still captures inner-loop exits, but the repaired local
predictor covers more (every tracked PC's own iteration count), so it
reduces MPKI by more — at the cost of the whole repair apparatus this
repository is about.
"""

from __future__ import annotations

from repro.harness.figures.common import BASELINE_SYSTEM
from repro.harness.report import format_table
from repro.harness.runner import pair_results, run_matrix, select_workloads
from repro.harness.systems import SystemConfig
from repro.metrics.aggregate import overall

_SYSTEMS = [
    SystemConfig(name="imli", scheme="imli"),
    SystemConfig(name="loop-forward-walk", scheme="forward", ports="32-4-2", coalesce=True),
    SystemConfig(name="loop-perfect", scheme="perfect"),
]


def test_imli_comparison(benchmark, scale):
    def run():
        workloads = select_workloads(scale)
        results = run_matrix(workloads, [BASELINE_SYSTEM, *_SYSTEMS], scale)
        return pair_results(results, BASELINE_SYSTEM.name)

    paired = benchmark.pedantic(run, iterations=1, rounds=1)

    def red(name):
        return overall(list(paired.get(name, []))).mean_mpki_reduction

    def gain(name):
        return overall(list(paired.get(name, []))).mean_ipc_gain

    rows = [
        (name, f"{red(name) * 100:+.1f}%", f"{gain(name) * 100:+.2f}%")
        for name in ("imli", "loop-forward-walk", "loop-perfect")
    ]
    print()
    print(format_table(["system", "MPKI redn", "IPC gain"], rows,
                       title="IMLI vs. repaired local predictor"))

    # IMLI helps without any repair structures...
    assert red("imli") > 0.0
    # ...but the repaired per-PC local predictor covers more.
    assert red("loop-forward-walk") > red("imli")
