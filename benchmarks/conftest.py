"""Shared benchmark configuration.

Benchmarks default to the ``smoke`` scale so the whole suite completes
in minutes; set ``REPRO_SCALE=small`` (or ``full``) for
publication-quality sweeps.  Each benchmark runs its experiment exactly
once (``pedantic`` with one round) — the measured quantity is the
experiment's wall time, and the printed artifact is the reproduced
table/figure.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.scale import Scale, current_scale


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--workers",
        type=int,
        default=None,
        help="process fan-out for sweep benchmarks (sets REPRO_WORKERS)",
    )


@pytest.fixture(scope="session", autouse=True)
def _apply_workers(request: pytest.FixtureRequest) -> None:
    """Plumb --workers through the runner's REPRO_WORKERS contract."""
    workers = request.config.getoption("--workers")
    if workers is not None:
        os.environ["REPRO_WORKERS"] = str(max(1, workers))


@pytest.fixture(scope="session")
def scale() -> Scale:
    """Benchmark scale (env REPRO_SCALE, default smoke)."""
    return current_scale(default="smoke")


def run_figure(benchmark, experiment_id: str, scale: Scale):
    """Run one experiment under pytest-benchmark and print the artifact."""
    from repro.harness.figures import run_experiment

    figure = benchmark.pedantic(
        run_experiment, args=(experiment_id, scale), iterations=1, rounds=1
    )
    print()
    print(figure.render())
    return figure
