"""Figure 11 bench: forward-walk repair vs. resources + coalescing.

Expected shape (paper): FWD-32-4-2 retains roughly three quarters of
the perfect-repair gains; a bigger OBQ helps; coalescing adds a few
points on the 32-entry configuration.
"""

from __future__ import annotations

from conftest import run_figure


def test_fig11_forward_walk(benchmark, scale):
    figure = run_figure(benchmark, "fig11", scale)
    retained = figure.data["retained"]
    # The headline configuration retains a majority of the gains.
    assert retained["forward-32-4-2"] > 0.4
    # A 64-entry OBQ does at least as well (slack for noise).
    assert retained["forward-64-4-2"] >= retained["forward-32-4-2"] - 0.10
    # Coalescing does not hurt the pressured configuration.
    assert figure.data["coalesce_delta"] > -0.10
