"""Telemetry overhead bench: disabled vs enabled pipeline throughput.

The observability contract (docs/observability.md) is that disabled
telemetry costs a single attribute check per instrumentation site —
under 5% of pipeline throughput — and that metrics-only collection
stays cheap enough to leave on during development.  This bench measures
both modes on one workload and prints the ratio; the assertion guards
the disabled path, which is what every default run pays.
"""

from __future__ import annotations

from time import perf_counter

from repro.harness.runner import load_trace, run_single
from repro.harness.systems import TABLE3_SYSTEMS
from repro.telemetry import TELEMETRY
from repro.workloads.suite import get_workload

_SYSTEM = next(
    cfg for cfg in TABLE3_SYSTEMS if cfg.name == "forward-walk-coalesce"
)


def _timed_run(spec, n_branches: int) -> tuple[float, float]:
    """(wall seconds, ipc) for one simulation at the current mode."""
    t0 = perf_counter()
    result = run_single(spec, _SYSTEM, n_branches)
    return perf_counter() - t0, result.ipc


def test_bench_telemetry_overhead(benchmark, scale):
    spec = get_workload("hpc-fft")
    n_branches = scale.branches_per_workload
    load_trace(spec, n_branches)  # warm the trace cache out-of-band

    was_enabled = TELEMETRY.enabled
    try:
        TELEMETRY.disable()
        _timed_run(spec, n_branches)  # warm-up (imports, cache reads)
        off_wall, off_ipc = benchmark.pedantic(
            _timed_run, args=(spec, n_branches), iterations=1, rounds=1
        )

        TELEMETRY.enable()
        on_wall, on_ipc = _timed_run(spec, n_branches)
    finally:
        if was_enabled:
            TELEMETRY.enable()
        else:
            TELEMETRY.disable()

    overhead = on_wall / off_wall - 1.0 if off_wall else 0.0
    print()
    print(f"telemetry off: {off_wall:.3f}s   on: {on_wall:.3f}s   ")
    print(f"metrics-collection overhead: {overhead:+.1%}")

    # Identical simulation either way — telemetry must never perturb it.
    assert on_ipc == off_ipc
    # Generous bound: single-run wall times at smoke scale are noisy;
    # the <5% acceptance claim is about the *disabled* path, checked in
    # tests/telemetry/test_noop_and_trace.py against an uninstrumented
    # baseline and here only indirectly (disabled mode IS the baseline
    # every other bench in this directory runs under).
    assert overhead < 1.0
