"""Figure 4 bench: MPKI opportunity of local prediction vs. no repair.

Expected shape (paper): the ideal local predictor shows a large MPKI
reduction in every category; without repair nearly all of it is lost
and some categories go negative.
"""

from __future__ import annotations

from conftest import run_figure


def test_fig04_opportunity(benchmark, scale):
    figure = run_figure(benchmark, "fig4", scale)
    ideal = figure.data["ideal"]
    none = figure.data["no_repair"]
    # The opportunity is substantial overall...
    assert ideal["overall"] > 0.10
    # ...and no-repair forfeits the large majority of it.
    assert none["overall"] < ideal["overall"] * 0.5
