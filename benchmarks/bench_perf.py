"""Perf bench: simulator throughput and warm-sweep reuse.

Measures cold single-run branches/sec per system and the wall-clock of
a repeated ``run_matrix`` sweep served by the persistent result cache,
then writes ``BENCH_perf.json`` at the repo root — the tracked perf
trajectory CI uploads as an artifact.

Run standalone (CI perf-smoke job, tiny scale)::

    python benchmarks/bench_perf.py --branches 4000 --repeats 1

or under pytest-benchmark with the rest of this directory::

    REPRO_SCALE=smoke python -m pytest benchmarks/bench_perf.py

The assertions only sanity-check structure (throughput positive, warm
pass faster than cold) — absolute numbers are machine-dependent and
belong in the JSON, not in a gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.harness.perf import (
    DEFAULT_SYSTEMS,
    SAMPLING_BRANCHES,
    SPECIALIZE_BRANCHES,
    run_perf,
)

_REPO_ROOT = Path(__file__).resolve().parent.parent


def test_bench_perf(benchmark, scale):
    """pytest-benchmark entry: one full perf measurement at ``scale``.

    Skips the sampled-vs-exact section — its locked accuracy config
    needs a 200k-branch trace, far past any pytest scale tier.  The
    standalone ``main`` below (and ``repro perf``) measure it.
    """
    payload = benchmark.pedantic(
        run_perf,
        kwargs={
            "branches": scale.branches_per_workload,
            "repeats": 1,
            "out": _REPO_ROOT / "BENCH_perf.json",
            "sampling_branches": None,
            "specialize_branches": scale.branches_per_workload,
        },
        iterations=1,
        rounds=1,
    )
    print()
    for name, row in payload["throughput"].items():
        print(f"{name:24s} {row['branches_per_s']:>12,.0f} branches/s")
    warm = payload["warm_sweep"]
    print(f"warm sweep speedup: {warm['speedup']:.0f}x")
    batch = payload["batch"]
    print(f"batch kernel speedup: {batch['speedup']:.1f}x")
    specialize = payload["specialize"]
    for name, row in specialize["systems"].items():
        print(f"specialize {name}: {row['speedup']:.2f}x ({row['engine']})")
    assert set(payload["throughput"]) == set(DEFAULT_SYSTEMS)
    assert all(row["branches_per_s"] > 0 for row in payload["throughput"].values())
    assert warm["warm_wall_s"] < warm["cold_wall_s"]
    assert batch["mpki_identical"], "batch kernel diverged from the exact engine"
    # Speedup is machine noise at pytest scales; bit-identity is the
    # contract and holds at every scale (including generic fallbacks).
    assert all(
        row["stats_identical"] for row in specialize["systems"].values()
    ), "specialized engine diverged from the generic exact engine"
    probe = specialize["abort_probe"]
    assert probe is None or probe["stats_identical"], (
        "guard-abort path diverged from the generic exact engine"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="hpc-fft")
    parser.add_argument("--branches", type=int, default=30_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", default=str(_REPO_ROOT / "BENCH_perf.json"), help="report path"
    )
    parser.add_argument(
        "--sampling-branches",
        type=int,
        default=None,
        help="trace length for the sampled-vs-exact section "
        "(default: the locked benchmark length)",
    )
    parser.add_argument(
        "--no-sampling",
        action="store_true",
        help="skip the sampled-vs-exact section (CI smoke scale)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="skip the batch-kernel-vs-scalar section",
    )
    parser.add_argument(
        "--specialize-branches",
        type=int,
        default=None,
        help="trace length for the specialized-vs-generic section "
        "(default: the locked benchmark length)",
    )
    parser.add_argument(
        "--no-specialize",
        action="store_true",
        help="skip the specialized-engine section",
    )
    args = parser.parse_args(argv)
    sampling_branches: int | None
    if args.no_sampling:
        sampling_branches = None
    elif args.sampling_branches is not None:
        sampling_branches = args.sampling_branches
    else:
        sampling_branches = SAMPLING_BRANCHES
    specialize_branches: int | None
    if args.no_specialize:
        specialize_branches = None
    elif args.specialize_branches is not None:
        specialize_branches = args.specialize_branches
    else:
        specialize_branches = SPECIALIZE_BRANCHES
    payload = run_perf(
        workload=args.workload,
        branches=args.branches,
        repeats=args.repeats,
        out=args.out,
        sampling_branches=sampling_branches,
        batch=not args.no_batch,
        specialize_branches=specialize_branches,
    )
    print(json.dumps(payload, indent=1, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
