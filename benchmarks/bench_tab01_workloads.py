"""Table 1 bench: workload suite composition.

Expected shape (paper): 202 workloads across seven categories with the
paper's exact per-category counts, and category-distinct branch
behaviour (HPC few sites / long runs, Server many sites, ...).
"""

from __future__ import annotations

from conftest import run_figure


def test_tab01_workloads(benchmark, scale):
    figure = run_figure(benchmark, "tab1", scale)
    counts = figure.data["counts"]
    assert figure.data["total"] == 202
    assert counts == {
        "server": 29,
        "hpc": 8,
        "ispec": 34,
        "fspec": 64,
        "mm": 15,
        "bp": 16,
        "personal": 36,
    }
