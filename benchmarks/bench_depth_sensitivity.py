"""Pipeline-depth sensitivity (paper §6.2's forward-looking claim).

The paper argues update-at-retire degrades as pipelines deepen (more
in-flight instances = staler counts) while repaired designs hold up.
This bench sweeps the front-end depth and checks the trend.
"""

from __future__ import annotations

from repro.harness.figures.common import BASELINE_SYSTEM
from repro.harness.report import format_table
from repro.harness.runner import pair_results, run_matrix, select_workloads
from repro.harness.systems import SystemConfig
from repro.metrics.aggregate import overall
from repro.pipeline.config import PipelineConfig

_SYSTEMS = [
    SystemConfig(name="retire-update", scheme="retire"),
    SystemConfig(name="forward-walk", scheme="forward", ports="32-4-2", coalesce=True),
    SystemConfig(name="perfect-repair", scheme="perfect"),
]

_DEPTHS = (8, 12, 20)


def _gain(paired, name):
    return overall(list(paired.get(name, []))).mean_ipc_gain


def test_depth_sensitivity(benchmark, scale):
    def run():
        workloads = select_workloads(scale)
        sweeps = {}
        for depth in _DEPTHS:
            config = PipelineConfig(frontend_depth=depth)
            results = run_matrix(
                workloads, [BASELINE_SYSTEM, *_SYSTEMS], scale, pipeline=config
            )
            sweeps[depth] = pair_results(results, BASELINE_SYSTEM.name)
        return sweeps

    sweeps = benchmark.pedantic(run, iterations=1, rounds=1)

    rows = []
    for depth in _DEPTHS:
        rows.append(
            (
                depth,
                f"{_gain(sweeps[depth], 'retire-update') * 100:+.2f}%",
                f"{_gain(sweeps[depth], 'forward-walk') * 100:+.2f}%",
                f"{_gain(sweeps[depth], 'perfect-repair') * 100:+.2f}%",
            )
        )
    print()
    print(
        format_table(
            ["frontend depth", "retire-update", "forward-walk", "perfect"],
            rows,
            title="IPC gain vs. pipeline depth",
        )
    )

    # Shape: retire-update never improves with depth; repaired designs
    # keep a clear edge over it at the deepest setting.
    shallow, _, deep = (_gain(sweeps[d], "retire-update") for d in _DEPTHS)
    assert deep <= shallow + 0.01
    assert _gain(sweeps[_DEPTHS[-1]], "forward-walk") > _gain(
        sweeps[_DEPTHS[-1]], "retire-update"
    )
