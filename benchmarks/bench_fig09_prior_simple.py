"""Figure 9 bench: update-at-retire and no-repair.

Expected shape (paper): both prior approaches retain far less than the
walk-based schemes — no-repair ~0%, retire-update well under half of
the perfect gains (its stale counts cost it tight loops; see
EXPERIMENTS.md for where our floor sits relative to the paper's 41%).
"""

from __future__ import annotations

from conftest import run_figure


def test_fig09_prior_simple(benchmark, scale):
    figure = run_figure(benchmark, "fig9", scale)
    retained = figure.data["retained"]
    perfect = figure.data["perfect"]["overall"]
    assert perfect > 0.0
    # Neither simple approach comes close to perfect repair.
    assert retained["no-repair"] < 0.5
    assert retained["retire-update"] < 0.5
    # And neither collapses catastrophically below baseline.
    assert retained["no-repair"] > -0.5
    assert retained["retire-update"] > -0.5
