"""Figure 10 bench: backward-walk and snapshot repair vs. resources.

Expected shape (paper): both improve monotonically with entries/ports;
lavish 64-64-64 budgets retain most gains, realistic budgets roughly
half for backward walk and less for the snapshot queue.
"""

from __future__ import annotations

from conftest import run_figure


def test_fig10_prior_walk(benchmark, scale):
    figure = run_figure(benchmark, "fig10", scale)
    retained = figure.data["retained"]
    # More resources never hurt much (allow small-sample slack).
    assert retained["backward-64-64-64"] >= retained["backward-16-4-4"] - 0.15
    # The lavish configuration retains a solid majority.
    assert retained["backward-64-64-64"] > 0.5
    # Snapshot repair never beats the equally-provisioned backward walk
    # at realistic budgets (its restore is table-sized).
    assert retained["snapshot-32-4-4"] <= retained["backward-32-4-4"] + 0.10
