"""Figure 13 bench: limited-PC repair scaling.

Expected shape (paper): gains scale monotonically with the number of
repaired PCs; the SQ variant tracks the carried variant; the scheme is
competitive despite repairing a handful of PCs.
"""

from __future__ import annotations

from conftest import run_figure


def test_fig13_limited_pc(benchmark, scale):
    figure = run_figure(benchmark, "fig13", scale)
    retained = figure.data["retained"]
    # Scaling with M is monotone (within small-sample slack, checked
    # pairwise inside the figure itself).
    assert figure.data["monotone"]
    # 16 repaired PCs recover a large share of the perfect gains.
    assert retained["limited-16pc"] > 0.4
    # The SQ variant is in the same family as the 8-PC carried variant.
    assert abs(retained["limited-8pc-sq32"] - retained["limited-8pc"]) < 0.35
