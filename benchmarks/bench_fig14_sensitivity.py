"""Figure 14 bench: iso-storage TAGE scaling and a 57KB TAGE baseline.

Expected shape (paper): spending ~2KB on a repaired local predictor
beats spending it on more TAGE (~3x); on a 57KB TAGE the local
predictor still adds IPC with every repair technique.
"""

from __future__ import annotations

from conftest import run_figure


def test_fig14_sensitivity(benchmark, scale):
    figure = run_figure(benchmark, "fig14", scale)
    iso = figure.data["iso_storage"]
    large = figure.data["large_baseline"]
    # The repaired local predictor beats iso-storage TAGE scaling.
    assert iso["tage8+forward-walk"] > iso["tage-9kb"]
    # Perfect repair still helps on the 57KB baseline.
    assert large["tage57+perfect"] > 0.0
    # Realistic repair keeps a useful fraction of it.
    assert large["tage57+forward-walk"] > large["tage57+perfect"] * 0.25
