#!/usr/bin/env python3
"""Explore how the pipeline shape drives repair demand.

The paper's §2.5(d): "the front-end runs much ahead of the back-end and
as we increase the pipeline depth ... the amount of state to hold
increases and along with it the associated complexity of state
management."  This example sweeps ROB size and front-end depth and
measures the two quantities that scale with them:

* repairs required per misprediction (Figure 8's metric), and
* OBQ checkpoint overflows at the paper's 32-entry budget.

Run:
    python examples/pipeline_exploration.py [workload-name]
"""

from __future__ import annotations

import sys

from typing import Callable

from repro.core import (
    LoopPredictor,
    LoopPredictorConfig,
    RepairPortConfig,
    StandardLocalUnit,
)
from repro.core.repair import ForwardWalkRepair, PerfectRepair
from repro.core.repair.base import RepairScheme, RepairStats
from repro.harness.report import format_table
from repro.memory import CacheHierarchy
from repro.pipeline import PipelineConfig, PipelineModel
from repro.pipeline.stats import SimStats
from repro.predictors import TagePredictor
from repro.trace.records import BranchRecord
from repro.workloads import generate_trace, get_workload


def run(
    trace: list[BranchRecord],
    config: PipelineConfig,
    scheme_factory: Callable[[], RepairScheme],
) -> tuple[SimStats, RepairStats]:
    unit = StandardLocalUnit(
        LoopPredictor(LoopPredictorConfig.entries(128)), scheme_factory()
    )
    model = PipelineModel(
        TagePredictor(), unit=unit, config=config, hierarchy=CacheHierarchy()
    )
    stats = model.run(trace)
    return stats, unit.scheme.stats


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mm-animation"
    trace = generate_trace(get_workload(workload), 15_000)
    print(f"workload: {workload}\n")

    rows = []
    for rob, depth in ((128, 8), (224, 12), (224, 20), (320, 20)):
        config = PipelineConfig(rob_entries=rob, frontend_depth=depth)
        _, perfect_stats = run(trace, config, PerfectRepair)
        fwd_sim, fwd_stats = run(
            trace, config, lambda: ForwardWalkRepair(RepairPortConfig(32, 4, 2))
        )
        rows.append(
            (
                f"{rob}/{depth}",
                f"{perfect_stats.mean_writes_per_event:.1f}",
                perfect_stats.writes_per_event_max,
                fwd_stats.uncheckpointed,
                f"{fwd_sim.ipc:.3f}",
            )
        )
    print(
        format_table(
            [
                "ROB/depth",
                "avg repairs/misp",
                "max repairs",
                "OBQ-32 overflows",
                "fwd-walk IPC",
            ],
            rows,
            title="Deeper/wider pipelines carry more repairable state",
        )
    )


if __name__ == "__main__":
    main()
