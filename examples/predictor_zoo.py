#!/usr/bin/env python3
"""Compare the global-predictor zoo on one workload.

Runs bimodal, gshare, hybrid (tournament), perceptron, and the three
TAGE presets over the same trace — a baseline sanity panel showing the
historical accuracy progression the paper builds on (TAGE being the
baseline *because* it wins).

Run:
    python examples/predictor_zoo.py [workload-name] [n-branches]
"""

from __future__ import annotations

import sys

from repro.harness.report import format_table
from repro.memory import CacheHierarchy
from repro.pipeline import PipelineModel
from repro.predictors import (
    BimodalPredictor,
    GSharePredictor,
    HybridPredictor,
    PerceptronPredictor,
    ScTagePredictor,
    TageConfig,
    TagePredictor,
)
from repro.workloads import generate_trace, get_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "ispec-gcc"
    n_branches = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    trace = generate_trace(get_workload(workload), n_branches)
    print(f"workload: {workload}, {len(trace)} branches\n")

    predictors = [
        ("bimodal", BimodalPredictor()),
        ("gshare", GSharePredictor()),
        ("hybrid", HybridPredictor()),
        ("perceptron", PerceptronPredictor()),
        ("tage-7.1kb", TagePredictor(TageConfig.kb8())),
        ("tage-9kb", TagePredictor(TageConfig.kb9())),
        ("tage-57kb", TagePredictor(TageConfig.kb64())),
        ("tage+sc", ScTagePredictor()),
    ]

    rows = []
    for name, predictor in predictors:
        stats = PipelineModel(predictor, hierarchy=CacheHierarchy()).run(trace)
        rows.append(
            (
                name,
                f"{predictor.storage_kb():.1f}",
                f"{stats.mpki:.2f}",
                f"{stats.branch_accuracy:.3%}",
                f"{stats.ipc:.3f}",
            )
        )
    print(
        format_table(
            ["predictor", "KB", "MPKI", "accuracy", "IPC"],
            rows,
            title="Global predictor baselines",
        )
    )


if __name__ == "__main__":
    main()
