#!/usr/bin/env python3
"""Build a custom workload and study its local-predictability.

Models a database page-scan kernel: a hot scan loop over fixed-size
pages (stable trip count = rows per page), a filter branch with high
bias, and a periodic commit path — then measures how much of TAGE's
misprediction traffic a repaired loop predictor recovers, and how the
BHT size changes the answer.

This is the intro-motivating scenario: per-branch patterns that global
history cannot see because the filter noise decorrelates it.

Run:
    python examples/custom_workload.py
"""

from __future__ import annotations

from repro.core import LoopPredictor, LoopPredictorConfig, RepairPortConfig, StandardLocalUnit
from repro.core.repair import ForwardWalkRepair, PerfectRepair
from repro.memory import CacheHierarchy
from repro.pipeline import PipelineModel
from repro.pipeline.stats import SimStats
from repro.predictors import TagePredictor
from repro.trace import collect_stats
from repro.trace.records import BranchRecord
from repro.workloads import WorkloadParams, WorkloadSpec, generate_trace


def page_scan_workload() -> WorkloadSpec:
    """A synthetic page-scan kernel: stable-trip loops + filter noise."""
    params = WorkloadParams(
        n_loops=3,            # page scan, index walk, batch loop
        n_tight_loops=2,      # memcmp-style inner loops
        n_forward_loops=2,    # commit-every-N paths
        n_patterns=4,
        n_biased=4,           # filter predicates
        n_global=1,
        trip_min=24,          # rows per page
        trip_max=64,
        trip_entropy=0.02,    # occasional short page
        bias_min=0.9,
        bias_max=0.97,
        loop_region_weight=0.85,
        gap_min=4,
        gap_max=10,
        working_set_kb=512,
        load_prob=0.3,
        stream_prob=0.6,
    )
    return WorkloadSpec(name="db-page-scan", category="custom", seed=1234, params=params)


def run_system(
    trace: list[BranchRecord], entries: int | None, perfect: bool = False
) -> SimStats:
    unit = None
    if entries is not None:
        scheme = PerfectRepair() if perfect else ForwardWalkRepair(
            RepairPortConfig(32, 4, 2), coalesce=True
        )
        unit = StandardLocalUnit(
            LoopPredictor(LoopPredictorConfig.entries(entries)), scheme
        )
    model = PipelineModel(TagePredictor(), unit=unit, hierarchy=CacheHierarchy())
    return model.run(trace)


def main() -> None:
    spec = page_scan_workload()
    trace = generate_trace(spec, 25_000)
    stats = collect_stats(trace)
    print(
        f"{spec.name}: {stats.total_branches} branches, "
        f"{stats.static_sites} sites, mean run length "
        f"{stats.mean_run_length():.1f}, taken rate {stats.taken_rate:.2f}\n"
    )

    base = run_system(trace, None)
    print(f"TAGE baseline        : IPC {base.ipc:.3f}  MPKI {base.mpki:.2f}")

    for entries in (64, 128, 256):
        result = run_system(trace, entries)
        gain = result.ipc / base.ipc - 1.0
        red = (base.mpki - result.mpki) / base.mpki
        print(
            f"loop{entries:<4d} fwd repair : IPC {result.ipc:.3f}  "
            f"MPKI {result.mpki:.2f}  (redn {red:+.1%}, gain {gain:+.2%})"
        )

    oracle = run_system(trace, 128, perfect=True)
    red = (base.mpki - oracle.mpki) / base.mpki
    gain = oracle.ipc / base.ipc - 1.0
    print(
        f"loop128 perfect      : IPC {oracle.ipc:.3f}  MPKI {oracle.mpki:.2f}  "
        f"(redn {red:+.1%}, gain {gain:+.2%})  <- upper bound"
    )


if __name__ == "__main__":
    main()
