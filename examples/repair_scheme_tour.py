#!/usr/bin/env python3
"""Tour of every repair scheme on one workload.

Reproduces a single-workload slice of Table 3: runs the same trace
through all eleven systems and prints them ordered by IPC gain, with
their repair statistics — a compact way to see *why* each scheme lands
where it does (busy cycles, checkpoint overflows, unrepaired state).

Run:
    python examples/repair_scheme_tour.py [workload-name] [n-branches]
"""

from __future__ import annotations

import sys

from repro.harness.report import format_table
from repro.harness.runner import run_single
from repro.harness.systems import TABLE3_SYSTEMS
from repro.workloads import get_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "server-cloud-compression"
    n_branches = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    spec = get_workload(workload)
    print(f"workload: {spec.name}, {n_branches} branches\n")

    results = {}
    for system in TABLE3_SYSTEMS:
        results[system.name] = run_single(spec, system, n_branches)

    base = results["baseline-tage"]
    rows = []
    for name, result in results.items():
        if name == "baseline-tage":
            continue
        gain = result.ipc / base.ipc - 1.0
        red = (base.mpki - result.mpki) / base.mpki if base.mpki else 0.0
        repair = result.extra.get("repair", {})
        rows.append(
            (
                name,
                f"{result.ipc:.3f}",
                f"{gain * 100:+.2f}%",
                f"{result.mpki:.2f}",
                f"{red * 100:+.1f}%",
                repair.get("busy_cycles", 0),
                repair.get("uncheckpointed", 0),
                repair.get("unrepaired", 0),
            )
        )
    rows.sort(key=lambda r: float(r[2].rstrip("%")))
    print(
        format_table(
            [
                "system",
                "IPC",
                "gain",
                "MPKI",
                "redn",
                "busy cyc",
                "unchk",
                "unrepaired",
            ],
            [("baseline-tage", f"{base.ipc:.3f}", "-", f"{base.mpki:.2f}", "-", "-", "-", "-")]
            + rows,
            title="Repair schemes, ordered by IPC gain",
        )
    )


if __name__ == "__main__":
    main()
