#!/usr/bin/env python3
"""The repair schemes generalise beyond the loop predictor.

The paper claims its techniques extend to *any* local predictor — only
the saved/restored state differs (§1).  This example plugs the generic
two-level local predictor (Yeh-Patt pattern histories instead of loop
counters) into the same repair schemes and shows the same qualitative
story: no-repair forfeits the gains, forward-walk repair recovers most
of the oracle.

Run:
    python examples/generic_local_predictor.py [workload-name]
"""

from __future__ import annotations

import sys

from repro.core import (
    RepairPortConfig,
    StandardLocalUnit,
    TwoLevelLocalConfig,
    TwoLevelLocalPredictor,
)
from repro.core.repair import ForwardWalkRepair, NoRepair, PerfectRepair
from repro.core.repair.base import RepairScheme
from repro.memory import CacheHierarchy
from repro.pipeline import PipelineModel
from repro.pipeline.stats import SimStats
from repro.predictors import TagePredictor
from repro.trace.records import BranchRecord
from repro.workloads import generate_trace, get_workload


def run(trace: list[BranchRecord], scheme: RepairScheme | None = None) -> SimStats:
    unit = None
    if scheme is not None:
        local = TwoLevelLocalPredictor(TwoLevelLocalConfig(bht_entries=128))
        unit = StandardLocalUnit(local, scheme)
    model = PipelineModel(TagePredictor(), unit=unit, hierarchy=CacheHierarchy())
    return model.run(trace)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "bp-sysmark-office"
    spec = get_workload(workload)
    trace = generate_trace(spec, 20_000)
    print(f"workload: {spec.name}, generic two-level local predictor\n")

    base = run(trace)
    print(f"TAGE baseline   : IPC {base.ipc:.3f}  MPKI {base.mpki:.2f}")

    for label, scheme in (
        ("no repair", NoRepair()),
        ("forward walk", ForwardWalkRepair(RepairPortConfig(32, 4, 2))),
        ("perfect repair", PerfectRepair()),
    ):
        result = run(trace, scheme)
        gain = result.ipc / base.ipc - 1.0
        red = (base.mpki - result.mpki) / base.mpki if base.mpki else 0.0
        print(
            f"{label:<16s}: IPC {result.ipc:.3f}  MPKI {result.mpki:.2f}  "
            f"(redn {red:+.1%}, gain {gain:+.2%})"
        )


if __name__ == "__main__":
    main()
