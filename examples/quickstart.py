#!/usr/bin/env python3
"""Quickstart: simulate one workload with and without a repaired local
predictor.

Builds the paper's default system — a 7.1KB TAGE baseline plus
CBPw-Loop128 with forward-walk repair (FWD-32-4-2, OBQ coalescing) —
runs an HPC workload through the Skylake-like pipeline model, and
prints the branch-prediction and performance deltas.

Run:
    python examples/quickstart.py [workload-name] [n-branches]
"""

from __future__ import annotations

import sys

from repro.core import LoopPredictor, LoopPredictorConfig, RepairPortConfig, StandardLocalUnit
from repro.core.repair import ForwardWalkRepair
from repro.memory import CacheHierarchy
from repro.pipeline import PipelineModel
from repro.predictors import TagePredictor
from repro.workloads import generate_trace, get_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "hpc-fft"
    n_branches = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    spec = get_workload(workload)
    print(f"workload: {spec.name} (category {spec.category}, seed {spec.seed})")
    trace = generate_trace(spec, n_branches)
    print(f"trace: {len(trace)} branches")

    # Baseline: TAGE alone.
    baseline_model = PipelineModel(TagePredictor(), hierarchy=CacheHierarchy())
    base = baseline_model.run(trace)
    print(f"\nTAGE baseline : IPC {base.ipc:.3f}  MPKI {base.mpki:.2f}")

    # TAGE + CBPw-Loop128 with forward-walk repair.
    local = LoopPredictor(LoopPredictorConfig.entries(128))
    scheme = ForwardWalkRepair(RepairPortConfig(32, 4, 2), coalesce=True)
    unit = StandardLocalUnit(local, scheme)
    model = PipelineModel(TagePredictor(), unit=unit, hierarchy=CacheHierarchy())
    stats = model.run(trace)
    print(f"+ loop repair : IPC {stats.ipc:.3f}  MPKI {stats.mpki:.2f}")

    mpki_reduction = (base.mpki - stats.mpki) / base.mpki if base.mpki else 0.0
    ipc_gain = stats.ipc / base.ipc - 1.0 if base.ipc else 0.0
    print(f"\nMPKI reduction: {mpki_reduction:+.1%}")
    print(f"IPC gain      : {ipc_gain:+.2%}")

    repair = stats.extra.get("repair", {})
    unit_stats = stats.extra.get("unit", {})
    print(
        f"\nrepair events {repair.get('events', 0)}, "
        f"avg {repair.get('mean_writes_per_event', 0.0):.1f} BHT writes/event, "
        f"max {repair.get('max_writes_per_event', 0)}"
    )
    print(
        f"overrides {unit_stats.get('overrides', 0)} "
        f"(saves {unit_stats.get('saves', 0)}, damages {unit_stats.get('damages', 0)})"
    )


if __name__ == "__main__":
    main()
